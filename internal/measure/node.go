package measure

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/types"
)

// BlockObservation is the streaming aggregate for one block at one
// node: the earliest local sighting (and its message kind) plus
// per-kind reception counts — exactly what analysis.BuildIndex
// derives for the node from its raw log.
type BlockObservation struct {
	FirstLocal sim.Time
	FirstKind  RecordKind
	// Blocks counts full-block receptions, Announces hash
	// announcements.
	Blocks    int
	Announces int
}

// TxObservation is the streaming aggregate for one transaction at one
// node: earliest local sighting plus the identity the reordering
// analysis needs.
type TxObservation struct {
	FirstLocal sim.Time
	Sender     string
	Nonce      uint64
}

// Node is an instrumented measurement client: a regular network peer
// whose ingress is logged with a local (NTP-skewed) clock.
//
// In the default (raw log) mode every reception appends a Record, like
// the study's JSONL logs. In streaming mode the node instead folds
// each reception into O(1) per-item aggregates, so campaign memory is
// O(blocks + transactions) rather than O(receptions) — the difference
// between a 600 GB log and a running summary.
type Node struct {
	name  string
	peer  *p2p.Node
	clock geo.Clock

	records []Record
	blocks  map[types.Hash]*types.Block

	streaming bool
	blockObs  map[types.Hash]*BlockObservation
	txObs     map[types.Hash]*TxObservation

	// Quiet-gap tracking: the longest local-clock interval between
	// successive block-related receptions. A healthy overlay delivers
	// something every few seconds; a long silence is the signature of
	// an outage or partition on the node's side of the network. Folded
	// incrementally, so it works identically in raw-log and streaming
	// modes.
	lastBlockLocal sim.Time
	blockSeen      bool
	maxQuietGap    sim.Time

	// captureTxLinks controls whether block records carry the full
	// transaction hash list (needed for commit-time analysis; costs
	// log volume, like the original raw logs' 600 GB).
	captureTxLinks bool
}

// Options configures a measurement node attachment.
type Options struct {
	// Name is the node label; the paper uses region abbreviations
	// ("NA", "EA", "WE", "CE").
	Name string
	// Region places the node.
	Region geo.Region
	// Peers is how many peers to connect. The paper's primary nodes
	// used "unlimited"; its subsidiary redundancy measurement used the
	// default 25.
	Peers int
	// MaxPeers caps inbound connections (0 = unlimited).
	MaxPeers int
	// CaptureTxLinks records each block's transaction hash list.
	CaptureTxLinks bool
	// Streaming folds receptions into per-item aggregates instead of
	// retaining raw Records (Records() then returns nil; use
	// analysis.IndexFromStreams). Memory stays O(items) rather than
	// O(receptions).
	Streaming bool
}

// Attach creates a measurement node, joins it to the network with the
// requested peer count and installs the logging observer. The clock
// should come from geo.NewClock for paper-faithful NTP error, or
// geo.PerfectClock for ground-truth runs.
func Attach(net *p2p.Network, opts Options, clock geo.Clock) (*Node, error) {
	if net == nil {
		return nil, errors.New("measure: nil network")
	}
	if opts.Name == "" {
		return nil, errors.New("measure: node needs a name")
	}
	peer, err := net.AddNode(opts.Region, opts.MaxPeers)
	if err != nil {
		return nil, fmt.Errorf("measure: add node: %w", err)
	}
	if opts.Peers > 0 {
		if err := net.ConnectSample(peer, opts.Peers); err != nil {
			return nil, fmt.Errorf("measure: connect %s: %w", opts.Name, err)
		}
	}
	m := &Node{
		name:           opts.Name,
		peer:           peer,
		clock:          clock,
		blocks:         make(map[types.Hash]*types.Block),
		streaming:      opts.Streaming,
		captureTxLinks: opts.CaptureTxLinks,
	}
	if opts.Streaming {
		m.blockObs = make(map[types.Hash]*BlockObservation)
		m.txObs = make(map[types.Hash]*TxObservation)
		peer.SetObserver(m.observeStream)
	} else {
		peer.SetObserver(m.observe)
	}
	return m, nil
}

// Name returns the node label.
func (m *Node) Name() string { return m.name }

// Region returns the node's region.
func (m *Node) Region() geo.Region { return m.peer.Region() }

// Peer exposes the underlying network node.
func (m *Node) Peer() *p2p.Node { return m.peer }

// Clock exposes the node's clock (for error-bar computations).
func (m *Node) Clock() geo.Clock { return m.clock }

// Records returns the log lines collected so far (not copied: the log
// can be large; callers must not mutate). Streaming nodes keep no raw
// log and return nil.
func (m *Node) Records() []Record { return m.records }

// Streaming reports whether the node aggregates instead of logging.
func (m *Node) Streaming() bool { return m.streaming }

// CaptureTxLinks reports whether block observations carry tx hash
// lists.
func (m *Node) CaptureTxLinks() bool { return m.captureTxLinks }

// BlockObservations returns the streaming per-block aggregates (nil
// in raw-log mode). The map is shared; callers must not mutate.
func (m *Node) BlockObservations() map[types.Hash]*BlockObservation { return m.blockObs }

// TxObservations returns the streaming per-transaction aggregates
// (nil in raw-log mode). The map is shared; callers must not mutate.
func (m *Node) TxObservations() map[types.Hash]*TxObservation { return m.txObs }

// Blocks returns the full content of every block observed, keyed by
// hash. The map is shared; callers must not mutate.
func (m *Node) Blocks() map[types.Hash]*types.Block { return m.blocks }

// MaxQuietGap returns the longest local-clock interval between
// successive block-related receptions (blocks or announcements) — the
// partition/outage signature the availability analysis reports. Zero
// until two receptions have been observed. Available in both raw-log
// and streaming modes.
func (m *Node) MaxQuietGap() sim.Time { return m.maxQuietGap }

// noteBlockActivity folds one block-related reception into the
// quiet-gap aggregate. The node's clock offset is constant, so local
// deltas are exact true-time deltas.
func (m *Node) noteBlockActivity(local sim.Time) {
	if m.blockSeen {
		if gap := local - m.lastBlockLocal; gap > m.maxQuietGap {
			m.maxQuietGap = gap
		}
	}
	m.blockSeen = true
	m.lastBlockLocal = local
}

// observe is the instrumentation hook: one Record per message, stamped
// with the local clock.
func (m *Node) observe(now sim.Time, from p2p.NodeID, msg *p2p.Message) {
	local := m.clock.Read(now)
	base := Record{
		Node:        m.name,
		Region:      m.peer.Region().String(),
		LocalMillis: int64(local),
		TrueMillis:  int64(now),
		FromPeer:    int(from),
	}
	switch msg.Kind {
	case p2p.MsgNewBlock, p2p.MsgCompactBlock:
		// A compact sketch carries the full header inline, so it is a
		// block sighting with the block's identity — only its wire
		// footprint differs, which the bandwidth accounting tracks.
		b := msg.Block
		if b == nil {
			return
		}
		m.noteBlockActivity(local)
		rec := base
		rec.Kind = KindBlock
		rec.Hash = b.Hash().String()
		rec.Number = b.Header.Number
		rec.ParentHash = b.Header.ParentHash.String()
		rec.Miner = b.Header.MinerLabel
		rec.TxCount = len(b.Txs)
		rec.GasUsed = b.Header.GasUsed
		rec.SizeBytes = b.EncodedSize()
		rec.Extra = b.Header.Extra
		for i := range b.Uncles {
			rec.Uncles = append(rec.Uncles, b.Uncles[i].Hash().String())
		}
		if m.captureTxLinks {
			rec.TxHashes = make([]string, len(b.Txs))
			for i, tx := range b.Txs {
				rec.TxHashes[i] = tx.Hash().String()
			}
		}
		m.records = append(m.records, rec)
		if _, seen := m.blocks[b.Hash()]; !seen {
			m.blocks[b.Hash()] = b
		}
	case p2p.MsgNewBlockHashes:
		m.noteBlockActivity(local)
		for _, h := range msg.Hashes {
			rec := base
			rec.Kind = KindAnnouncement
			rec.Hash = h.String()
			m.records = append(m.records, rec)
		}
	case p2p.MsgTransactions:
		for _, tx := range msg.Txs {
			if tx == nil {
				continue
			}
			rec := base
			rec.Kind = KindTx
			rec.Hash = tx.Hash().String()
			rec.Sender = tx.Sender.String()
			rec.Nonce = tx.Nonce
			m.records = append(m.records, rec)
		}
	default:
		// GetBlock requests carry no measurement value; the study's
		// logs track blocks, announcements and transactions.
	}
}

// observeStream is the streaming instrumentation hook: fold each
// reception into the per-item aggregates. The earliest-sighting rule
// matches analysis.BuildIndex's noteFirst exactly (strictly earlier
// local time wins; ties keep the first reception), so the index built
// from these aggregates is identical to one built from raw records.
func (m *Node) observeStream(now sim.Time, from p2p.NodeID, msg *p2p.Message) {
	local := m.clock.Read(now)
	switch msg.Kind {
	case p2p.MsgNewBlock, p2p.MsgCompactBlock:
		b := msg.Block
		if b == nil {
			return
		}
		m.noteBlockActivity(local)
		h := b.Hash()
		o := m.blockObs[h]
		if o == nil {
			o = &BlockObservation{FirstLocal: local, FirstKind: KindBlock}
			m.blockObs[h] = o
		} else if local < o.FirstLocal {
			o.FirstLocal = local
			o.FirstKind = KindBlock
		}
		o.Blocks++
		if _, seen := m.blocks[h]; !seen {
			m.blocks[h] = b
		}
	case p2p.MsgNewBlockHashes:
		m.noteBlockActivity(local)
		for _, h := range msg.Hashes {
			o := m.blockObs[h]
			if o == nil {
				o = &BlockObservation{FirstLocal: local, FirstKind: KindAnnouncement}
				m.blockObs[h] = o
			} else if local < o.FirstLocal {
				o.FirstLocal = local
				o.FirstKind = KindAnnouncement
			}
			o.Announces++
		}
	case p2p.MsgTransactions:
		for _, tx := range msg.Txs {
			if tx == nil {
				continue
			}
			h := tx.Hash()
			o := m.txObs[h]
			if o == nil {
				m.txObs[h] = &TxObservation{
					FirstLocal: local,
					Sender:     tx.Sender.String(),
					Nonce:      tx.Nonce,
				}
			} else if local < o.FirstLocal {
				o.FirstLocal = local
			}
		}
	}
}
