package measure

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/types"
)

// Node is an instrumented measurement client: a regular network peer
// whose ingress is logged with a local (NTP-skewed) clock.
type Node struct {
	name  string
	peer  *p2p.Node
	clock geo.Clock

	records []Record
	blocks  map[types.Hash]*types.Block
	// captureTxLinks controls whether block records carry the full
	// transaction hash list (needed for commit-time analysis; costs
	// log volume, like the original raw logs' 600 GB).
	captureTxLinks bool
}

// Options configures a measurement node attachment.
type Options struct {
	// Name is the node label; the paper uses region abbreviations
	// ("NA", "EA", "WE", "CE").
	Name string
	// Region places the node.
	Region geo.Region
	// Peers is how many peers to connect. The paper's primary nodes
	// used "unlimited"; its subsidiary redundancy measurement used the
	// default 25.
	Peers int
	// MaxPeers caps inbound connections (0 = unlimited).
	MaxPeers int
	// CaptureTxLinks records each block's transaction hash list.
	CaptureTxLinks bool
}

// Attach creates a measurement node, joins it to the network with the
// requested peer count and installs the logging observer. The clock
// should come from geo.NewClock for paper-faithful NTP error, or
// geo.PerfectClock for ground-truth runs.
func Attach(net *p2p.Network, opts Options, clock geo.Clock) (*Node, error) {
	if net == nil {
		return nil, errors.New("measure: nil network")
	}
	if opts.Name == "" {
		return nil, errors.New("measure: node needs a name")
	}
	peer, err := net.AddNode(opts.Region, opts.MaxPeers)
	if err != nil {
		return nil, fmt.Errorf("measure: add node: %w", err)
	}
	if opts.Peers > 0 {
		if err := net.ConnectSample(peer, opts.Peers); err != nil {
			return nil, fmt.Errorf("measure: connect %s: %w", opts.Name, err)
		}
	}
	m := &Node{
		name:           opts.Name,
		peer:           peer,
		clock:          clock,
		blocks:         make(map[types.Hash]*types.Block),
		captureTxLinks: opts.CaptureTxLinks,
	}
	peer.SetObserver(m.observe)
	return m, nil
}

// Name returns the node label.
func (m *Node) Name() string { return m.name }

// Region returns the node's region.
func (m *Node) Region() geo.Region { return m.peer.Region() }

// Peer exposes the underlying network node.
func (m *Node) Peer() *p2p.Node { return m.peer }

// Clock exposes the node's clock (for error-bar computations).
func (m *Node) Clock() geo.Clock { return m.clock }

// Records returns the log lines collected so far (not copied: the log
// can be large; callers must not mutate).
func (m *Node) Records() []Record { return m.records }

// Blocks returns the full content of every block observed, keyed by
// hash. The map is shared; callers must not mutate.
func (m *Node) Blocks() map[types.Hash]*types.Block { return m.blocks }

// observe is the instrumentation hook: one Record per message, stamped
// with the local clock.
func (m *Node) observe(now sim.Time, from p2p.NodeID, msg *p2p.Message) {
	local := m.clock.Read(now)
	base := Record{
		Node:        m.name,
		Region:      m.peer.Region().String(),
		LocalMillis: int64(local),
		TrueMillis:  int64(now),
		FromPeer:    int(from),
	}
	switch msg.Kind {
	case p2p.MsgNewBlock:
		b := msg.Block
		if b == nil {
			return
		}
		rec := base
		rec.Kind = KindBlock
		rec.Hash = b.Hash().String()
		rec.Number = b.Header.Number
		rec.ParentHash = b.Header.ParentHash.String()
		rec.Miner = b.Header.MinerLabel
		rec.TxCount = len(b.Txs)
		rec.GasUsed = b.Header.GasUsed
		rec.SizeBytes = b.EncodedSize()
		rec.Extra = b.Header.Extra
		for i := range b.Uncles {
			rec.Uncles = append(rec.Uncles, b.Uncles[i].Hash().String())
		}
		if m.captureTxLinks {
			rec.TxHashes = make([]string, len(b.Txs))
			for i, tx := range b.Txs {
				rec.TxHashes[i] = tx.Hash().String()
			}
		}
		m.records = append(m.records, rec)
		if _, seen := m.blocks[b.Hash()]; !seen {
			m.blocks[b.Hash()] = b
		}
	case p2p.MsgNewBlockHashes:
		for _, h := range msg.Hashes {
			rec := base
			rec.Kind = KindAnnouncement
			rec.Hash = h.String()
			m.records = append(m.records, rec)
		}
	case p2p.MsgTransactions:
		for _, tx := range msg.Txs {
			if tx == nil {
				continue
			}
			rec := base
			rec.Kind = KindTx
			rec.Hash = tx.Hash().String()
			rec.Sender = tx.Sender.String()
			rec.Nonce = tx.Nonce
			m.records = append(m.records, rec)
		}
	default:
		// GetBlock requests carry no measurement value; the study's
		// logs track blocks, announcements and transactions.
	}
}
