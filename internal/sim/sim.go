// Package sim provides the deterministic discrete-event engine the
// whole reproduction runs on: a virtual clock, a binary-heap event
// queue with stable FIFO ordering among simultaneous events, and
// seeded random-number streams.
//
// The engine substitutes for wall-clock time and the real Internet:
// every network hop, mining interval and transaction arrival is an
// event scheduled at a virtual timestamp. A given seed reproduces the
// exact same run, which makes every experiment in EXPERIMENTS.md
// replayable.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured in milliseconds since the start
// of the simulation. Millisecond resolution matches the measurement
// granularity of the paper's instrumented Geth logs.
type Time int64

// Millisecond helpers.
const (
	Millisecond Time = 1
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts the virtual time into a time.Duration.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t)) * time.Millisecond
}

// Seconds returns the timestamp in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / 1000 }

// String renders the timestamp as a duration offset.
func (t Time) String() string { return t.Duration().String() }

// FromDuration converts a wall duration into virtual Time, rounding to
// milliseconds.
func FromDuration(d time.Duration) Time {
	return Time(d.Milliseconds())
}

// Event is a scheduled callback. Events run exactly once, at their
// scheduled virtual time.
type Event func(now Time)

// ErrStopped is returned by Run variants when the engine was halted
// before the condition was met.
var ErrStopped = errors.New("sim: engine stopped")

type scheduled struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among equal timestamps
	call Event
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any) {
	item, ok := x.(*scheduled)
	if !ok {
		return
	}
	*h = append(*h, item)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return item
}

// Engine is a single-threaded discrete-event executor. It is not safe
// for concurrent use; the simulation model is sequential by design so
// runs are deterministic.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	ran     uint64
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at the given delay from now. Negative delays are
// clamped to zero (events cannot run in the past).
func (e *Engine) Schedule(delay Time, fn Event) {
	if fn == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &scheduled{at: e.now + delay, seq: e.seq, call: fn})
}

// ScheduleAt runs fn at an absolute virtual time. Times in the past
// are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.Schedule(at-e.now, fn)
}

// Stop halts the engine: the currently executing event finishes, and
// no further events run until the next Run* call resets the flag.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next, ok := heap.Pop(&e.queue).(*scheduled)
	if !ok {
		return false
	}
	e.now = next.at
	e.ran++
	next.call(e.now)
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline. The clock is
// advanced to the deadline even if the queue drains earlier, so
// repeated RunUntil calls walk time forward monotonically.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// RNG is a deterministic random stream with the distribution helpers
// the simulation model needs. It wraps PCG from math/rand/v2.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a deterministic stream from a 64-bit seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream. Using labeled forks keeps
// subsystem randomness independent of event interleaving: adding events
// to one subsystem does not perturb another's draws.
func (g *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037)
	for _, c := range []byte(label) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return NewRNG(g.r.Uint64() ^ h)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n). n must be > 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exponential samples an exponential distribution with the given mean.
// It is the arrival law for both block production (Poisson mining
// race) and transaction submission.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// ExpTime samples an exponential inter-arrival as a virtual duration.
func (g *RNG) ExpTime(mean Time) Time {
	return Time(math.Round(g.Exponential(float64(mean))))
}

// LogNormal samples a log-normal distribution parameterized by the
// underlying normal's mu and sigma. Internet one-way-delay jitter is
// classically log-normal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 1,
// used to skew transaction-sender activity (a few accounts produce
// most traffic). For repeated draws with the same parameters prefer
// NewZipf, which precomputes the CDF.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	return NewZipf(g, n, s).Sample()
}

// Zipf is a precomputed discrete Zipf sampler over [0, n).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a sampler with exponent s over [0, n). Degenerate
// parameters (n <= 1) yield a sampler that always returns 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	z := &Zipf{rng: rng}
	if n <= 1 {
		return z
	}
	z.cdf = make([]float64, n)
	var acc float64
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = acc
	}
	return z
}

// Sample draws one index.
func (z *Zipf) Sample() int {
	if len(z.cdf) == 0 {
		return 0
	}
	u := z.rng.Float64() * z.cdf[len(z.cdf)-1]
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice draws an index proportionally to weights. It returns
// an error when no weight is positive.
func (g *RNG) WeightedChoice(weights []float64) (int, error) {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0, fmt.Errorf("sim: weighted choice over non-positive weights %v", weights)
	}
	u := g.r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u <= acc {
			return i, nil
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sim: weighted choice fell through")
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes xs in place.
func Shuffle[T any](g *RNG, xs []T) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
