// Package sim provides the deterministic discrete-event engine the
// whole reproduction runs on: a virtual clock, a binary-heap event
// queue with stable FIFO ordering among simultaneous events, and
// seeded random-number streams.
//
// The engine substitutes for wall-clock time and the real Internet:
// every network hop, mining interval and transaction arrival is an
// event scheduled at a virtual timestamp. A given seed reproduces the
// exact same run, which makes every experiment in EXPERIMENTS.md
// replayable.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured in milliseconds since the start
// of the simulation. Millisecond resolution matches the measurement
// granularity of the paper's instrumented Geth logs.
type Time int64

// Millisecond helpers.
const (
	Millisecond Time = 1
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts the virtual time into a time.Duration.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t)) * time.Millisecond
}

// Seconds returns the timestamp in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / 1000 }

// String renders the timestamp as a duration offset.
func (t Time) String() string { return t.Duration().String() }

// FromDuration converts a wall duration into virtual Time, rounding to
// milliseconds.
func FromDuration(d time.Duration) Time {
	return Time(d.Milliseconds())
}

// Event is a scheduled callback. Events run exactly once, at their
// scheduled virtual time.
type Event func(now Time)

// ErrStopped is returned by Run variants when the engine was halted
// before the condition was met.
var ErrStopped = errors.New("sim: engine stopped")

// Handler is the typed fast path for hot event producers: instead of
// allocating a closure per event, a subsystem implements Handler once
// and schedules (handler, a, b) triples via ScheduleCall. The two
// uint64 arguments typically carry an opcode and an index into a
// caller-owned slab.
type Handler interface {
	HandleEvent(now Time, a, b uint64)
}

// EventNamer is optionally implemented by Handlers to label their
// opcodes in traces ("deliver", "announce", ...). Tracing falls back
// to the handler's type name and numeric opcode otherwise.
type EventNamer interface {
	EventName(op uint64) string
}

// EventClass partitions dispatched events by scheduling path, the
// coarse axis every trace is bucketed on.
type EventClass uint8

// Event classes.
const (
	// EventFunc is a closure scheduled via Schedule/ScheduleAt.
	EventFunc EventClass = iota
	// EventCall is a typed Handler invocation (ScheduleCall).
	EventCall
	// EventTimer is a Timer occurrence.
	EventTimer
)

// String names the class.
func (c EventClass) String() string {
	switch c {
	case EventFunc:
		return "func"
	case EventCall:
		return "call"
	case EventTimer:
		return "timer"
	default:
		return "unknown"
	}
}

// Probe observes event dispatch. A probe is strictly passive: it runs
// after the event's callback, consumes no simulation RNG, and cannot
// reorder or reschedule anything — attaching one never changes a
// seeded run's artifacts. h and op are set only for EventCall
// dispatches (the Handler and its first argument); wall is the
// callback's wall-clock cost. Probes are invoked from the engine's
// single execution goroutine.
type Probe interface {
	Dispatch(now Time, class EventClass, h Handler, op uint64, wall time.Duration)
}

// EngineStats is the always-on engine snapshot: a handful of counters
// the engine maintains regardless of tracing, cheap enough to read
// mid-run. Every field is a pure function of the simulation (no wall
// time), so stats are byte-identical across repeated seeded runs.
type EngineStats struct {
	// Now is the current virtual time.
	Now Time
	// Processed counts executed events.
	Processed uint64
	// Pending counts scheduled, not yet executed events.
	Pending int
	// MaxPending is the queue-depth high-water mark.
	MaxPending int
	// Slots is the allocated slot-arena capacity (live + free), the
	// engine's memory footprint in event slots.
	Slots int
	// Scheduled counts every enqueue (Schedule, ScheduleCall and Timer
	// resets alike): the global sequence counter.
	Scheduled uint64
}

// slot is one event's inline storage. Slots live in a free-listed
// arena; the heap orders slot indices, so scheduling an event
// allocates nothing once the arena has warmed up.
type slot struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among equal timestamps
	pos int32  // current heap position, -1 when not queued

	// Exactly one of fn / h / timer is set.
	fn    Event
	h     Handler
	a, b  uint64
	timer *Timer
}

// Engine is a single-threaded discrete-event executor. It is not safe
// for concurrent use; the simulation model is sequential by design so
// runs are deterministic.
//
// The queue is an index-addressed 4-ary heap over inline slots with a
// free list. Pop order is the strict total order (at, seq) — seq is a
// global schedule counter, so simultaneous events run in FIFO order
// regardless of heap shape. The 4-ary layout halves tree depth versus
// a binary heap and keeps parent/child slots on fewer cache lines.
type Engine struct {
	now        Time
	lastAt     Time
	slots      []slot
	free       []int32
	heap       []int32
	seq        uint64
	stopped    bool
	ran        uint64
	maxPending int
	probe      Probe
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// LastEventAt returns the timestamp of the most recently executed
// event (zero before any event runs). Unlike Now, it never reflects a
// RunUntil deadline the clock coasted to without executing anything —
// making it the right "how far did the simulation actually get"
// frontier for lanes whose granted deadlines overshoot their last
// event by a lookahead-bound-dependent margin.
func (e *Engine) LastEventAt() Time { return e.lastAt }

// Processed returns the number of events executed so far. Cancelled
// timers do not count: unlike the pre-Timer engine, dead events are
// removed from the queue instead of firing as no-ops.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.heap) }

// Stats snapshots the always-on engine counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:        e.now,
		Processed:  e.ran,
		Pending:    len(e.heap),
		MaxPending: e.maxPending,
		Slots:      len(e.slots),
		Scheduled:  e.seq,
	}
}

// SetProbe attaches (or with nil, detaches) a dispatch probe. The
// disabled path costs one nil check per event; see docs/OBSERVABILITY.md
// for the determinism contract.
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// acquire returns a free slot index, growing the arena when the free
// list is empty.
func (e *Engine) acquire() int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		return i
	}
	e.slots = append(e.slots, slot{pos: -1})
	return int32(len(e.slots) - 1)
}

// release returns a slot to the free list, dropping any references it
// held so callbacks and handlers do not outlive their event.
func (e *Engine) release(i int32) {
	s := &e.slots[i]
	s.fn = nil
	s.h = nil
	s.timer = nil
	s.a, s.b = 0, 0
	s.pos = -1
	e.free = append(e.free, i)
}

// less orders slot indices by (at, seq). seq values are unique, so
// this is a strict total order: heap pops are FIFO-stable by
// construction, not by tie-breaking luck.
func (e *Engine) less(i, j int32) bool {
	si, sj := &e.slots[i], &e.slots[j]
	if si.at != sj.at {
		return si.at < sj.at
	}
	return si.seq < sj.seq
}

// push appends slot i to the heap and restores the heap invariant.
func (e *Engine) push(i int32) {
	e.heap = append(e.heap, i)
	if len(e.heap) > e.maxPending {
		e.maxPending = len(e.heap)
	}
	e.slots[i].pos = int32(len(e.heap) - 1)
	e.siftUp(int32(len(e.heap) - 1))
}

func (e *Engine) siftUp(pos int32) {
	h := e.heap
	i := h[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !e.less(i, h[parent]) {
			break
		}
		h[pos] = h[parent]
		e.slots[h[pos]].pos = pos
		pos = parent
	}
	h[pos] = i
	e.slots[i].pos = pos
}

func (e *Engine) siftDown(pos int32) {
	h := e.heap
	n := int32(len(h))
	i := h[pos]
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], i) {
			break
		}
		h[pos] = h[best]
		e.slots[h[pos]].pos = pos
		pos = best
	}
	h[pos] = i
	e.slots[i].pos = pos
}

// popMin removes and returns the earliest slot index.
func (e *Engine) popMin() int32 {
	i := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	e.slots[i].pos = -1
	if n > 0 {
		e.heap[0] = last
		e.slots[last].pos = 0
		e.siftDown(0)
	}
	return i
}

// detach removes slot i from an arbitrary heap position (timer cancel
// and reschedule). The slot itself stays allocated.
func (e *Engine) detach(i int32) {
	pos := e.slots[i].pos
	n := int32(len(e.heap)) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	e.slots[i].pos = -1
	if pos == n {
		return
	}
	e.heap[pos] = last
	e.slots[last].pos = pos
	if pos > 0 && e.less(e.heap[pos], e.heap[(pos-1)/4]) {
		e.siftUp(pos)
	} else {
		e.siftDown(pos)
	}
}

// enqueue stamps slot i with the next sequence number and queues it at
// the (clamped) absolute time.
func (e *Engine) enqueue(i int32, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	s := &e.slots[i]
	s.at = at
	s.seq = e.seq
	e.push(i)
}

// Schedule runs fn at the given delay from now. Negative delays are
// clamped to zero (events cannot run in the past).
func (e *Engine) Schedule(delay Time, fn Event) {
	if fn == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	i := e.acquire()
	e.slots[i].fn = fn
	e.enqueue(i, e.now+delay)
}

// ScheduleAt runs fn at an absolute virtual time. Times in the past
// are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.Schedule(at-e.now, fn)
}

// ScheduleCall schedules a typed handler invocation. This is the
// zero-allocation fast path: no closure is created — the handler
// pointer and its two arguments are stored inline in the event slot.
func (e *Engine) ScheduleCall(delay Time, h Handler, a, b uint64) {
	if h == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	i := e.acquire()
	s := &e.slots[i]
	s.h = h
	s.a, s.b = a, b
	e.enqueue(i, e.now+delay)
}

// ScheduleCallAt is ScheduleCall at an absolute time (clamped to now).
func (e *Engine) ScheduleCallAt(at Time, h Handler, a, b uint64) {
	if at < e.now {
		at = e.now
	}
	e.ScheduleCall(at-e.now, h, a, b)
}

// orderedBand marks sequence numbers supplied by the caller through
// ScheduleCallAtOrdered. It sits above every FIFO sequence the engine
// can assign (seq is a counter starting at 1), so at equal timestamps
// all FIFO-scheduled events run before all ordered events.
const orderedBand uint64 = 1 << 63

// ScheduleCallAtOrdered is ScheduleCallAt with a caller-supplied tie
// key in place of the engine's FIFO sequence number. At equal
// timestamps, ordered events run after every FIFO-scheduled event and
// among themselves in ascending key order — regardless of the order
// the ScheduleCallAtOrdered calls were made in. Keys must be unique
// per engine among pending ordered events and below 1<<63.
//
// This exists for cross-shard message merging: deliveries buffered on
// other lanes are injected in batches whose composition depends on
// window sizing, so FIFO sequence numbers would make equal-time tie
// order depend on the lookahead bound matrix. A key derived from the
// sending lane's own execution order keeps the merged schedule a pure
// function of simulation state.
func (e *Engine) ScheduleCallAtOrdered(at Time, h Handler, a, b uint64, key uint64) {
	if h == nil {
		return
	}
	if at < e.now {
		at = e.now
	}
	i := e.acquire()
	s := &e.slots[i]
	s.h = h
	s.a, s.b = a, b
	e.seq++ // counts toward Scheduled; the tie key below replaces it in the heap
	s.at = at
	s.seq = orderedBand | key
	e.push(i)
}

// Stop halts the engine: the currently executing event finishes, no
// further events run during the active Run* call, and the queue is left
// intact. Stop is one-shot — it halts at most one Run* call. Issued
// while the engine is idle, it inhibits exactly the next Run*/RunFor
// call, which returns immediately without executing anything (and, for
// RunUntil, without advancing the clock). The call after that resumes
// normally, so stop-then-rerun still drains the queue.
func (e *Engine) Stop() { e.stopped = true }

// consumeStop reports and clears a pending stop request. Clearing at
// the point of consumption (rather than on Run* entry) is what makes a
// pre-run Stop effective instead of silently discarded.
func (e *Engine) consumeStop() bool {
	if e.stopped {
		e.stopped = false
		return true
	}
	return false
}

// step executes the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	i := e.popMin()
	s := &e.slots[i]
	// Every schedule path clamps to now, so s.at >= e.now always; the
	// guard makes the clock monotonic by construction rather than by
	// trusting every (current and future) enqueue call site.
	if s.at > e.now {
		e.now = s.at
	}
	e.lastAt = e.now
	e.ran++
	fn, h, a, b, t := s.fn, s.h, s.a, s.b, s.timer
	e.release(i)
	if e.probe != nil {
		e.dispatchProbed(fn, h, a, b, t)
		return true
	}
	switch {
	case t != nil:
		// Mark the timer idle before the callback so the callback can
		// Reset (reschedule-in-callback) without tripping the
		// still-pending path.
		t.slot = -1
		t.fn(e.now)
	case fn != nil:
		fn(e.now)
	case h != nil:
		h.HandleEvent(e.now, a, b)
	}
	return true
}

// dispatchProbed is the traced twin of step's dispatch switch: same
// callback order, plus wall timing and a probe notification after the
// callback. Kept out of step so the untraced hot path stays compact.
func (e *Engine) dispatchProbed(fn Event, h Handler, a, b uint64, t *Timer) {
	start := time.Now()
	class := EventFunc
	switch {
	case t != nil:
		class = EventTimer
		t.slot = -1
		t.fn(e.now)
	case fn != nil:
		fn(e.now)
	case h != nil:
		class = EventCall
		h.HandleEvent(e.now, a, b)
	}
	e.probe.Dispatch(e.now, class, h, a, time.Since(start))
}

// Run executes events until the queue drains or Stop is called. A Stop
// issued before Run starts inhibits this call entirely (see Stop).
func (e *Engine) Run() {
	if e.consumeStop() {
		return
	}
	for e.step() {
		if e.consumeStop() {
			return
		}
	}
}

// RunUntil executes events with timestamps <= deadline. The clock is
// advanced to the deadline even if the queue drains earlier, so
// repeated RunUntil calls walk time forward monotonically. When the run
// is halted by Stop — including a Stop issued before the call — the
// clock is not advanced past the last executed event.
func (e *Engine) RunUntil(deadline Time) {
	if e.consumeStop() {
		return
	}
	for len(e.heap) != 0 && e.slots[e.heap[0]].at <= deadline {
		e.step()
		if e.consumeStop() {
			return
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// NextEventAt returns the timestamp of the earliest queued event; ok is
// false when the queue is empty. The conductor uses it to derive each
// lookahead window without disturbing the queue.
func (e *Engine) NextEventAt() (at Time, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Timer is a cancellable, reschedulable event handle bound to one
// callback. A subsystem allocates a Timer once and Resets it for every
// occurrence of its recurring event (mining race wins, workload
// arrivals, hold timeouts); the queue slot is pooled, so steady-state
// rescheduling allocates nothing.
//
// Determinism contract: every Reset consumes the next global sequence
// number, exactly as a fresh Schedule at the same point would — so
// replacing schedule-and-tombstone loops with a Timer preserves the
// relative order of all simultaneous events. Stop removes the queued
// occurrence without disturbing any other event's (at, seq) key.
type Timer struct {
	e    *Engine
	fn   Event
	slot int32 // queued slot index, -1 when idle
}

// NewTimer creates an idle timer for fn. fn must be non-nil.
func (e *Engine) NewTimer(fn Event) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{e: e, fn: fn, slot: -1}
}

// Reset (re)schedules the timer to fire at delay from now, cancelling
// any pending occurrence. Negative delays clamp to zero.
func (t *Timer) Reset(delay Time) {
	if delay < 0 {
		delay = 0
	}
	t.ResetAt(t.e.now + delay)
}

// ResetAt (re)schedules the timer to fire at an absolute time (clamped
// to now), cancelling any pending occurrence. The clamp is enforced
// here, not only in enqueue: step trusts every queued timestamp to be
// >= the clock, so the documented "clamped to now" contract must hold
// at this boundary no matter how the queue internals evolve.
func (t *Timer) ResetAt(at Time) {
	e := t.e
	if at < e.now {
		at = e.now
	}
	if t.slot >= 0 {
		e.detach(t.slot)
		e.enqueue(t.slot, at)
		return
	}
	i := e.acquire()
	e.slots[i].timer = t
	t.slot = i
	e.enqueue(i, at)
}

// Stop cancels the pending occurrence, reporting whether one was
// pending. A stopped timer can be Reset again.
func (t *Timer) Stop() bool {
	if t.slot < 0 {
		return false
	}
	e := t.e
	e.detach(t.slot)
	e.release(t.slot)
	t.slot = -1
	return true
}

// Pending reports whether an occurrence is queued.
func (t *Timer) Pending() bool { return t.slot >= 0 }

// When returns the pending occurrence's firing time; ok is false when
// the timer is idle.
func (t *Timer) When() (at Time, ok bool) {
	if t.slot < 0 {
		return 0, false
	}
	return t.e.slots[t.slot].at, true
}

// RNG is a deterministic random stream with the distribution helpers
// the simulation model needs. It wraps PCG from math/rand/v2.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a deterministic stream from a 64-bit seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream. Using labeled forks keeps
// subsystem randomness independent of event interleaving: adding events
// to one subsystem does not perturb another's draws.
func (g *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037)
	for _, c := range []byte(label) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return NewRNG(g.r.Uint64() ^ h)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n). n must be > 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exponential samples an exponential distribution with the given mean.
// It is the arrival law for both block production (Poisson mining
// race) and transaction submission.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// ExpTime samples an exponential inter-arrival as a virtual duration.
func (g *RNG) ExpTime(mean Time) Time {
	return Time(math.Round(g.Exponential(float64(mean))))
}

// LogNormal samples a log-normal distribution parameterized by the
// underlying normal's mu and sigma. Internet one-way-delay jitter is
// classically log-normal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 1,
// used to skew transaction-sender activity (a few accounts produce
// most traffic). For repeated draws with the same parameters prefer
// NewZipf, which precomputes the CDF.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	return NewZipf(g, n, s).Sample()
}

// Zipf is a precomputed discrete Zipf sampler over [0, n).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a sampler with exponent s over [0, n). Degenerate
// parameters (n <= 1) yield a sampler that always returns 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	z := &Zipf{rng: rng}
	if n <= 1 {
		return z
	}
	z.cdf = make([]float64, n)
	var acc float64
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = acc
	}
	return z
}

// Sample draws one index.
func (z *Zipf) Sample() int {
	if len(z.cdf) == 0 {
		return 0
	}
	u := z.rng.Float64() * z.cdf[len(z.cdf)-1]
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice draws an index proportionally to weights. It returns
// an error when no weight is positive.
func (g *RNG) WeightedChoice(weights []float64) (int, error) {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0, fmt.Errorf("sim: weighted choice over non-positive weights %v", weights)
	}
	u := g.r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u <= acc {
			return i, nil
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sim: weighted choice fell through")
}

// Weighted is a precomputed cumulative-weight sampler over a fixed
// weight vector: construction is O(n), each draw is one uniform sample
// plus a binary search. It makes exactly the same choice WeightedChoice
// would make from the same RNG state (same single Float64 draw, same
// selection rule), so hot paths can switch to it without perturbing
// seeded runs. Non-positive weights are never drawn.
type Weighted struct {
	cdf   []float64 // cumulative sums over positive weights only
	index []int     // original index of each positive weight
	total float64
}

// NewWeighted builds a sampler over weights. It returns an error when
// no weight is positive, matching WeightedChoice.
func NewWeighted(weights []float64) (*Weighted, error) {
	w := &Weighted{}
	var total float64
	for i, x := range weights {
		if x <= 0 {
			continue
		}
		total += x
		w.cdf = append(w.cdf, total)
		w.index = append(w.index, i)
	}
	if total <= 0 {
		return nil, fmt.Errorf("sim: weighted sampler over non-positive weights %v", weights)
	}
	w.total = total
	return w, nil
}

// Sample draws one index proportionally to the weights.
func (w *Weighted) Sample(g *RNG) int {
	u := g.r.Float64() * w.total
	// First positive-weight position with cdf >= u — the same index the
	// linear scan in WeightedChoice stops at (its condition is u <= acc
	// over the running sum of positive weights).
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.index[lo]
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PermInto fills p with a random permutation of [0, len(p)), consuming
// exactly the same RNG draws as Perm(len(p)) — a seeded run can switch
// between them freely. It exists so hot paths can reuse a scratch
// buffer instead of allocating a fresh permutation per call.
func (g *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	g.r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// Shuffle permutes xs in place.
func Shuffle[T any](g *RNG, xs []T) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
