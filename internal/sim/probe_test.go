package sim

import (
	"testing"
	"time"
)

// recordingProbe captures every dispatch notification.
type recordingProbe struct {
	classes []EventClass
	ops     []uint64
	times   []Time
}

func (p *recordingProbe) Dispatch(now Time, class EventClass, h Handler, op uint64, wall time.Duration) {
	p.classes = append(p.classes, class)
	p.ops = append(p.ops, op)
	p.times = append(p.times, now)
}

type countingHandler struct{ calls int }

func (h *countingHandler) HandleEvent(now Time, a, b uint64) { h.calls++ }

func TestEngineStatsCounters(t *testing.T) {
	e := NewEngine()
	st := e.Stats()
	if st.Processed != 0 || st.Pending != 0 || st.MaxPending != 0 || st.Scheduled != 0 {
		t.Fatalf("fresh engine stats not zero: %+v", st)
	}
	h := &countingHandler{}
	for i := 0; i < 5; i++ {
		e.ScheduleCall(Time(i), h, 0, 0)
	}
	if st := e.Stats(); st.Pending != 5 || st.MaxPending != 5 || st.Scheduled != 5 {
		t.Fatalf("pre-run stats: %+v", st)
	}
	e.Run()
	st = e.Stats()
	if st.Processed != 5 || st.Pending != 0 {
		t.Fatalf("post-run stats: %+v", st)
	}
	if st.MaxPending != 5 {
		t.Fatalf("MaxPending = %d, want 5", st.MaxPending)
	}
	if st.Slots == 0 {
		t.Fatal("Slots should report the warmed arena capacity")
	}
	if st.Now != 4*Millisecond {
		t.Fatalf("Now = %v, want 4ms", st.Now)
	}
}

func TestEngineStatsMaxPendingHighWater(t *testing.T) {
	e := NewEngine()
	// Queue depth rises to 3, drains, rises to 2: high water stays 3.
	for i := 0; i < 3; i++ {
		e.Schedule(1, func(Time) {})
	}
	e.Run()
	e.Schedule(1, func(Time) {})
	e.Schedule(1, func(Time) {})
	e.Run()
	if st := e.Stats(); st.MaxPending != 3 {
		t.Fatalf("MaxPending = %d, want 3", st.MaxPending)
	}
}

func TestProbeObservesAllDispatchClasses(t *testing.T) {
	e := NewEngine()
	p := &recordingProbe{}
	e.SetProbe(p)
	h := &countingHandler{}
	e.Schedule(1, func(Time) {})
	e.ScheduleCall(2, h, 7, 0)
	timer := e.NewTimer(func(Time) {})
	timer.Reset(3)
	e.Run()
	want := []EventClass{EventFunc, EventCall, EventTimer}
	if len(p.classes) != len(want) {
		t.Fatalf("probe saw %d events, want %d", len(p.classes), len(want))
	}
	for i, c := range want {
		if p.classes[i] != c {
			t.Errorf("event %d class = %v, want %v", i, p.classes[i], c)
		}
	}
	if p.ops[1] != 7 {
		t.Errorf("call op = %d, want 7", p.ops[1])
	}
	if h.calls != 1 {
		t.Errorf("handler ran %d times, want 1", h.calls)
	}
}

// TestProbeDoesNotPerturbExecution runs an identical event mix with
// and without a probe and asserts the execution order and final stats
// match — the probe determinism contract at the engine level.
func TestProbeDoesNotPerturbExecution(t *testing.T) {
	run := func(probe Probe) ([]int, EngineStats) {
		e := NewEngine()
		if probe != nil {
			e.SetProbe(probe)
		}
		var order []int
		rng := NewRNG(99)
		var timer *Timer
		timer = e.NewTimer(func(now Time) {
			order = append(order, -1)
			if len(order) < 40 {
				timer.Reset(rng.ExpTime(5 * Millisecond))
			}
		})
		timer.Reset(1)
		for i := 0; i < 30; i++ {
			i := i
			e.Schedule(Time(rng.IntN(50)), func(Time) { order = append(order, i) })
		}
		e.Run()
		return order, e.Stats()
	}
	plainOrder, plainStats := run(nil)
	probedOrder, probedStats := run(&recordingProbe{})
	if len(plainOrder) != len(probedOrder) {
		t.Fatalf("event counts differ: %d vs %d", len(plainOrder), len(probedOrder))
	}
	for i := range plainOrder {
		if plainOrder[i] != probedOrder[i] {
			t.Fatalf("execution order diverges at %d: %d vs %d", i, plainOrder[i], probedOrder[i])
		}
	}
	if plainStats != probedStats {
		t.Fatalf("stats diverge: %+v vs %+v", plainStats, probedStats)
	}
}

func TestEventClassString(t *testing.T) {
	cases := map[EventClass]string{
		EventFunc:     "func",
		EventCall:     "call",
		EventTimer:    "timer",
		EventClass(9): "unknown",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("EventClass(%d).String() = %q, want %q", c, got, want)
		}
	}
}
