package sim

import (
	"reflect"
	"sort"
	"testing"
)

// crossEntry is a buffered cross-lane message in the test harness:
// a ping emitted by srcLane during phase B, destined for dstLane.
type crossEntry struct {
	at      Time
	srcLane int
	emitIdx int
	dstLane int
	hops    uint64
}

// pingPong bounces events between region lanes through the conductor's
// merge: every handled event re-emits to the next lane with a 1-tick
// delay until the hop budget is spent. It models the p2p transport's
// contract — phase-B cross sends only append to the per-source buffer.
type pingPong struct {
	c       *Conductor
	buf     [][]crossEntry // per source lane
	emitted []int
	totals  []int // per source lane: lanes run concurrently in phase B
}

func (p *pingPong) HandleEvent(now Time, lane, hops uint64) {
	p.totals[int(lane)-1]++
	if hops == 0 {
		return
	}
	src := int(lane)
	dst := src%len(p.buf) + 1 // next region lane, 1-based
	p.buf[src-1] = append(p.buf[src-1], crossEntry{
		at: now + 1, srcLane: src, emitIdx: p.emitted[src-1],
		dstLane: dst, hops: hops - 1,
	})
	p.emitted[src-1]++
}

// merge drains the buffers in (at, srcLane, emitIdx) order — the same
// discipline the p2p merge uses — into the destination lanes.
func (p *pingPong) merge() int {
	var all []crossEntry
	for i := range p.buf {
		all = append(all, p.buf[i]...)
		p.buf[i] = p.buf[i][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.srcLane != b.srcLane {
			return a.srcLane < b.srcLane
		}
		return a.emitIdx < b.emitIdx
	})
	for _, e := range all {
		p.c.Lane(e.dstLane-1).ScheduleCallAt(e.at, p, uint64(e.dstLane), e.hops)
	}
	return len(all)
}

// runPingPong executes the ping-pong model over `regions` lanes with
// the given worker count and returns total events plus per-lane stats.
func runPingPong(regions, workers int) (total int, stats []EngineStats, cstats ConductorStats) {
	c := NewConductor(regions)
	p := &pingPong{c: c, buf: make([][]crossEntry, regions), emitted: make([]int, regions), totals: make([]int, regions)}
	p.merge() // harmless empty drain, proves the hook tolerates idle calls
	c.Merge = p.merge
	// Seed every region lane with a bouncing chain plus some local-only
	// events, at staggered times so lanes genuinely interleave.
	for r := 0; r < regions; r++ {
		lane := c.Lane(r)
		lane.ScheduleCallAt(Time(r), p, uint64(r+1), 40)
		for k := 0; k < 5; k++ {
			lane.ScheduleCallAt(Time(10*k+r), p, uint64(r+1), 0)
		}
	}
	// The global lane injects into region 1 mid-run, exercising phase A
	// ordering ahead of region events at the same timestamp.
	c.Global().ScheduleAt(7, func(now Time) {
		c.Lane(0).ScheduleCallAt(now+1, p, 1, 3)
	})
	c.Run(workers)
	for i := 0; i <= regions; i++ {
		stats = append(stats, c.lanes[i].Stats())
	}
	for _, n := range p.totals {
		total += n
	}
	return total, stats, c.Stats()
}

// TestConductorMatchesAcrossWorkerCounts is the core determinism
// contract: the schedule — event counts, per-lane clocks, sequence
// counters, window counts — is identical no matter how many worker
// goroutines execute phase B. Run with -race this also exercises the
// cross-lane merge under real concurrency.
func TestConductorMatchesAcrossWorkerCounts(t *testing.T) {
	refTotal, refStats, refC := runPingPong(6, 1)
	if refTotal == 0 {
		t.Fatal("ping-pong model ran no events")
	}
	if refC.Merged == 0 {
		t.Fatal("no cross-lane messages merged; the test is vacuous")
	}
	for _, workers := range []int{2, 4, 6, 16} {
		total, stats, cs := runPingPong(6, workers)
		if total != refTotal {
			t.Fatalf("workers=%d: %d events, want %d", workers, total, refTotal)
		}
		if !reflect.DeepEqual(cs, refC) {
			t.Fatalf("workers=%d: conductor stats %+v, want %+v", workers, cs, refC)
		}
		for i := range stats {
			if stats[i] != refStats[i] {
				t.Fatalf("workers=%d lane %d: stats %+v, want %+v", workers, i, stats[i], refStats[i])
			}
		}
	}
}

// TestConductorGlobalRunsFirstAtTie pins the phase ordering: a global
// event and a region event at the same timestamp execute global-first,
// because the global lane is a pure source feeding the regions.
func TestConductorGlobalRunsFirstAtTie(t *testing.T) {
	c := NewConductor(2)
	var order []string
	c.Global().ScheduleAt(5, func(Time) { order = append(order, "global") })
	c.Lane(0).ScheduleAt(5, func(Time) { order = append(order, "region") })
	c.Run(2)
	if len(order) != 2 || order[0] != "global" || order[1] != "region" {
		t.Fatalf("execution order %v, want [global region]", order)
	}
}

// TestConductorStallCounter pins the lookahead-stall telemetry: a
// region lane whose only event lies at or past every deadline must be
// counted as stalled, then run once the constraint clears.
func TestConductorStallCounter(t *testing.T) {
	c := NewConductor(2)
	ran := 0
	// Lane 1's event at t=3 forces lane 0's first window deadline to 3,
	// stalling lane 0's own event at t=9 until lane 1 has advanced.
	c.Lane(0).ScheduleAt(9, func(Time) { ran++ })
	c.Lane(1).ScheduleAt(3, func(Time) { ran++ })
	c.Run(2)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if s := c.Stats(); s.Stalled == 0 {
		t.Fatalf("expected lookahead stalls, got stats %+v", s)
	}
}

// TestConductorDrainsSingleLane pins the drain fast path: when only
// one region lane holds events and the global lane is empty, the lane
// runs to completion without per-millisecond barriers.
func TestConductorDrainsSingleLane(t *testing.T) {
	c := NewConductor(3)
	left := 1000
	var h Handler
	h = handlerFunc(func(now Time, a, b uint64) {
		if left--; left > 0 {
			c.Lane(2).ScheduleCall(1, h, 0, 0)
		}
	})
	c.Lane(2).ScheduleCall(0, h, 0, 0)
	c.Run(3)
	if left != 0 {
		t.Fatalf("chain left %d events unrun", left)
	}
	if s := c.Stats(); s.Windows != 1 {
		t.Fatalf("expected a single drain window, got stats %+v", s)
	}
}

// handlerFunc adapts a function to the Handler interface for tests.
type handlerFunc func(now Time, a, b uint64)

func (f handlerFunc) HandleEvent(now Time, a, b uint64) { f(now, a, b) }

// TestSetBoundsClosure pins the shortest-path closure SetBounds
// stores: a direct pair bound larger than a multi-hop path must be
// tightened to the path, and the diagonal must become the shortest
// round trip through another lane.
func TestSetBoundsClosure(t *testing.T) {
	t.Run("synthetic", func(t *testing.T) {
		c := NewConductor(3)
		c.SetBounds([][]Time{
			{0, 10, 50},
			{10, 0, 5},
			{50, 5, 0},
		})
		// Direct 0→2 bound of 50 exceeds the two-hop path 0→1→2 = 15.
		if got := c.dist[1][3]; got != 15 {
			t.Fatalf("closure 0→2 = %v, want 15 (via lane 1)", got)
		}
		if got := c.dist[3][1]; got != 15 {
			t.Fatalf("closure 2→0 = %v, want 15 (via lane 1)", got)
		}
		// Diagonals: shortest round trip through another lane.
		if got := c.dist[1][1]; got != 20 {
			t.Fatalf("round trip lane 0 = %v, want 20 (0→1→0)", got)
		}
		if got := c.dist[2][2]; got != 10 {
			t.Fatalf("round trip lane 1 = %v, want 10 (1→2→1)", got)
		}
		if got := c.dist[3][3]; got != 10 {
			t.Fatalf("round trip lane 2 = %v, want 10 (2→1→2)", got)
		}
	})
	// The concrete case from the default geo model (floors = 0.25 ×
	// base, truncated): WE→OC is bounded at 35 ms directly but a chain
	// relayed through NA is bounded at 11 + 20 = 31 ms. Using the raw
	// matrix instead of its closure would overshoot the deadline.
	t.Run("geo WE-NA-OC triangle", func(t *testing.T) {
		c := NewConductor(3) // lanes: 0=NA, 1=WE, 2=OC
		c.SetBounds([][]Time{
			{0, 11, 20},
			{11, 0, 35},
			{20, 35, 0},
		})
		if got := c.dist[2][3]; got != 31 {
			t.Fatalf("closure WE→OC = %v, want 31 (via NA)", got)
		}
		if got := c.dist[1][1]; got != 22 {
			t.Fatalf("round trip NA = %v, want 22 (NA→WE→NA)", got)
		}
	})
	// Entries below the 1 ms transport floor clamp up to 1.
	t.Run("clamp", func(t *testing.T) {
		c := NewConductor(2)
		c.SetBounds([][]Time{{0, 0}, {-5, 0}})
		if got := c.dist[1][2]; got != 1 {
			t.Fatalf("clamped bound = %v, want 1", got)
		}
	})
	t.Run("bad shape panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("SetBounds accepted a wrong-shape matrix")
			}
		}()
		NewConductor(3).SetBounds([][]Time{{0, 1}, {1, 0}})
	})
}

// TestConductorWiderBoundsWidenWindows is the tentpole's behavioral
// contract: raising the per-pair bounds must let lanes run further per
// window (fewer, wider windows) while executing exactly the same
// events.
func TestConductorWiderBoundsWidenWindows(t *testing.T) {
	run := func(bound Time) (ran int, cs ConductorStats) {
		c := NewConductor(2)
		c.SetBounds([][]Time{{0, bound}, {bound, 0}})
		var n [2]int // per-lane: phase B runs the lanes concurrently
		for k := 0; k < 10; k++ {
			c.Lane(0).ScheduleAt(Time(10*k), func(Time) { n[0]++ })
			c.Lane(1).ScheduleAt(Time(10*k), func(Time) { n[1]++ })
		}
		c.Run(2)
		return n[0] + n[1], c.Stats()
	}
	narrowN, narrow := run(1)
	wideN, wide := run(50)
	if narrowN != 20 || wideN != 20 {
		t.Fatalf("event totals differ across bounds: narrow=%d wide=%d, want 20", narrowN, wideN)
	}
	if wide.Windows >= narrow.Windows {
		t.Fatalf("wider bounds did not reduce windows: narrow=%d wide=%d", narrow.Windows, wide.Windows)
	}
	sumWidth := func(cs ConductorStats) (total uint64) {
		for _, row := range cs.Pairs {
			for _, p := range row {
				total += p.WidthSum
				// Histogram consistency: bucket counts cover every window.
				var b uint64
				for _, w := range p.Widths {
					b += w
				}
				if b != p.Count {
					t.Fatalf("pair histogram sums to %d, Count %d", b, p.Count)
				}
			}
		}
		return total
	}
	if nw, ww := sumWidth(narrow), sumWidth(wide); ww <= nw {
		t.Fatalf("wider bounds did not widen windows: narrow width sum %d, wide %d", nw, ww)
	}
}

// TestConductorPairHistogramRecordsStalls pins who gets blamed for a
// stall: the binding source lane's row in the pair matrix.
func TestConductorPairHistogramRecordsStalls(t *testing.T) {
	c := NewConductor(2)
	ran := 0
	// Lane 1's event at t=3 bounds lane 0's first deadline to 3,
	// stalling lane 0's own event at t=9 (uniform 1 ms bounds).
	c.Lane(0).ScheduleAt(9, func(Time) { ran++ })
	c.Lane(1).ScheduleAt(3, func(Time) { ran++ })
	c.Run(1)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	cs := c.Stats()
	if cs.Pairs == nil {
		t.Fatal("no pair histogram recorded")
	}
	// Lane indices: region lane r is conductor lane r+1.
	p := cs.Pairs[2][1]
	if p.Stalled == 0 || p.Widths[0] == 0 {
		t.Fatalf("lane 1 → lane 0 stall not recorded: %+v", p)
	}
	if cs.Stalled == 0 {
		t.Fatalf("conductor stall counter empty: %+v", cs)
	}
}

// TestWidthBucket pins the histogram bucketing: 0 = stall, k covers
// [2^(k-1), 2^k), the top bucket absorbs the rest.
func TestWidthBucket(t *testing.T) {
	cases := []struct {
		width Time
		want  int
	}{
		{0, 0}, {-3, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10},
		{1 << 20, WindowWidthBuckets - 1}, {maxTime, WindowWidthBuckets - 1},
	}
	for _, tc := range cases {
		if got := WidthBucket(tc.width); got != tc.want {
			t.Fatalf("WidthBucket(%d) = %d, want %d", tc.width, got, tc.want)
		}
	}
}

// TestConductorGlobalHorizonUnpinsLanes pins the GlobalHorizon
// contract: internal global events (bookkeeping that touches no
// region-lane state) stop binding phase-B deadlines when the owner
// certifies the next lane-touching time, while the conservative
// default still stalls lanes on every pending global event.
func TestConductorGlobalHorizonUnpinsLanes(t *testing.T) {
	run := func(withHorizon bool) (ran int, cs ConductorStats) {
		c := NewConductor(2)
		// Internal global bookkeeping every 10 ms, then a final global
		// event at 200 (the only one the owner would call touching).
		for k := 1; k <= 9; k++ {
			c.Global().ScheduleAt(Time(10*k), func(Time) { ran++ })
		}
		c.Global().ScheduleAt(200, func(Time) { ran++ })
		// Region lane 0 holds events beyond several global events; the
		// default bound stalls them until the global lane catches up.
		c.Lane(0).ScheduleAt(50, func(Time) { ran++ })
		c.Lane(0).ScheduleAt(150, func(Time) { ran++ })
		if withHorizon {
			c.GlobalHorizon = func() Time { return 200 }
		}
		c.Run(2)
		return ran, c.Stats()
	}
	defN, def := run(false)
	horN, hor := run(true)
	if defN != 12 || horN != 12 {
		t.Fatalf("event totals differ: default=%d horizon=%d, want 12", defN, horN)
	}
	// Lane indices: global is 0, region lane 0 is conductor lane 1.
	if def.Pairs == nil || def.Pairs[0][1].Stalled == 0 {
		t.Fatalf("default bound recorded no global-bound stalls: %+v", def)
	}
	if hor.Pairs != nil && hor.Pairs[0][1].Stalled != 0 {
		t.Fatalf("horizon run still stalled on the global lane: %+v", hor.Pairs[0][1])
	}
	if hor.Stalled >= def.Stalled {
		t.Fatalf("horizon did not reduce stalls: default=%d horizon=%d", def.Stalled, hor.Stalled)
	}
}

// TestConductorGlobalHorizonBelowNextIsConservative pins the clamp: a
// horizon at or below the global lane's next event restores the
// default next-global bound exactly.
func TestConductorGlobalHorizonBelowNextIsConservative(t *testing.T) {
	run := func(withHorizon bool) ConductorStats {
		c := NewConductor(2)
		for k := 1; k <= 5; k++ {
			c.Global().ScheduleAt(Time(20*k), func(Time) {})
		}
		c.Lane(0).ScheduleAt(90, func(Time) {})
		c.Lane(1).ScheduleAt(70, func(Time) {})
		if withHorizon {
			c.GlobalHorizon = func() Time { return 0 }
		}
		c.Run(2)
		return c.Stats()
	}
	def, clamped := run(false), run(true)
	if def.Windows != clamped.Windows || def.Stalled != clamped.Stalled ||
		def.LaneWindows != clamped.LaneWindows {
		t.Fatalf("horizon ≤ next(global) changed the schedule: default=%+v clamped=%+v", def, clamped)
	}
}

// TestConductorFrontierIgnoresDeadlineOvershoot pins the end-of-run
// frontier contract: after Run, Frontier is the last executed event's
// timestamp regardless of how far past it the final granted deadlines
// let lane clocks coast — so it is invariant across bound matrices
// that Now is not.
func TestConductorFrontierIgnoresDeadlineOvershoot(t *testing.T) {
	run := func(bound Time) (now, frontier Time) {
		c := NewConductor(2)
		c.Merge = func() int { return 0 } // activates the round-trip deadline term
		c.SetBounds([][]Time{
			{0, bound},
			{bound, 0},
		})
		c.Lane(0).ScheduleAt(50, func(Time) {})
		c.Lane(1).ScheduleAt(100, func(Time) {})
		c.Run(2)
		return c.Now(), c.Frontier()
	}
	nowTight, frontTight := run(1)
	nowWide, frontWide := run(40)
	if frontTight != 100 || frontWide != 100 {
		t.Fatalf("frontier moved with the bound matrix: tight=%v wide=%v, want 100", frontTight, frontWide)
	}
	if nowWide <= nowTight {
		t.Fatalf("expected the wide bound to overshoot the clock: tight=%v wide=%v", nowTight, nowWide)
	}
}
