package sim

import (
	"sort"
	"testing"
)

// crossEntry is a buffered cross-lane message in the test harness:
// a ping emitted by srcLane during phase B, destined for dstLane.
type crossEntry struct {
	at      Time
	srcLane int
	emitIdx int
	dstLane int
	hops    uint64
}

// pingPong bounces events between region lanes through the conductor's
// merge: every handled event re-emits to the next lane with a 1-tick
// delay until the hop budget is spent. It models the p2p transport's
// contract — phase-B cross sends only append to the per-source buffer.
type pingPong struct {
	c       *Conductor
	buf     [][]crossEntry // per source lane
	emitted []int
	totals  []int // per source lane: lanes run concurrently in phase B
}

func (p *pingPong) HandleEvent(now Time, lane, hops uint64) {
	p.totals[int(lane)-1]++
	if hops == 0 {
		return
	}
	src := int(lane)
	dst := src%len(p.buf) + 1 // next region lane, 1-based
	p.buf[src-1] = append(p.buf[src-1], crossEntry{
		at: now + 1, srcLane: src, emitIdx: p.emitted[src-1],
		dstLane: dst, hops: hops - 1,
	})
	p.emitted[src-1]++
}

// merge drains the buffers in (at, srcLane, emitIdx) order — the same
// discipline the p2p merge uses — into the destination lanes.
func (p *pingPong) merge() int {
	var all []crossEntry
	for i := range p.buf {
		all = append(all, p.buf[i]...)
		p.buf[i] = p.buf[i][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.srcLane != b.srcLane {
			return a.srcLane < b.srcLane
		}
		return a.emitIdx < b.emitIdx
	})
	for _, e := range all {
		p.c.Lane(e.dstLane-1).ScheduleCallAt(e.at, p, uint64(e.dstLane), e.hops)
	}
	return len(all)
}

// runPingPong executes the ping-pong model over `regions` lanes with
// the given worker count and returns total events plus per-lane stats.
func runPingPong(regions, workers int) (total int, stats []EngineStats, cstats ConductorStats) {
	c := NewConductor(regions)
	p := &pingPong{c: c, buf: make([][]crossEntry, regions), emitted: make([]int, regions), totals: make([]int, regions)}
	p.merge() // harmless empty drain, proves the hook tolerates idle calls
	c.Merge = p.merge
	// Seed every region lane with a bouncing chain plus some local-only
	// events, at staggered times so lanes genuinely interleave.
	for r := 0; r < regions; r++ {
		lane := c.Lane(r)
		lane.ScheduleCallAt(Time(r), p, uint64(r+1), 40)
		for k := 0; k < 5; k++ {
			lane.ScheduleCallAt(Time(10*k+r), p, uint64(r+1), 0)
		}
	}
	// The global lane injects into region 1 mid-run, exercising phase A
	// ordering ahead of region events at the same timestamp.
	c.Global().ScheduleAt(7, func(now Time) {
		c.Lane(0).ScheduleCallAt(now+1, p, 1, 3)
	})
	c.Run(workers)
	for i := 0; i <= regions; i++ {
		stats = append(stats, c.lanes[i].Stats())
	}
	for _, n := range p.totals {
		total += n
	}
	return total, stats, c.Stats()
}

// TestConductorMatchesAcrossWorkerCounts is the core determinism
// contract: the schedule — event counts, per-lane clocks, sequence
// counters, window counts — is identical no matter how many worker
// goroutines execute phase B. Run with -race this also exercises the
// cross-lane merge under real concurrency.
func TestConductorMatchesAcrossWorkerCounts(t *testing.T) {
	refTotal, refStats, refC := runPingPong(6, 1)
	if refTotal == 0 {
		t.Fatal("ping-pong model ran no events")
	}
	if refC.Merged == 0 {
		t.Fatal("no cross-lane messages merged; the test is vacuous")
	}
	for _, workers := range []int{2, 4, 6, 16} {
		total, stats, cs := runPingPong(6, workers)
		if total != refTotal {
			t.Fatalf("workers=%d: %d events, want %d", workers, total, refTotal)
		}
		if cs != refC {
			t.Fatalf("workers=%d: conductor stats %+v, want %+v", workers, cs, refC)
		}
		for i := range stats {
			if stats[i] != refStats[i] {
				t.Fatalf("workers=%d lane %d: stats %+v, want %+v", workers, i, stats[i], refStats[i])
			}
		}
	}
}

// TestConductorGlobalRunsFirstAtTie pins the phase ordering: a global
// event and a region event at the same timestamp execute global-first,
// because the global lane is a pure source feeding the regions.
func TestConductorGlobalRunsFirstAtTie(t *testing.T) {
	c := NewConductor(2)
	var order []string
	c.Global().ScheduleAt(5, func(Time) { order = append(order, "global") })
	c.Lane(0).ScheduleAt(5, func(Time) { order = append(order, "region") })
	c.Run(2)
	if len(order) != 2 || order[0] != "global" || order[1] != "region" {
		t.Fatalf("execution order %v, want [global region]", order)
	}
}

// TestConductorStallCounter pins the lookahead-stall telemetry: a
// region lane whose only event lies at or past every deadline must be
// counted as stalled, then run once the constraint clears.
func TestConductorStallCounter(t *testing.T) {
	c := NewConductor(2)
	ran := 0
	// Lane 1's event at t=3 forces lane 0's first window deadline to 3,
	// stalling lane 0's own event at t=9 until lane 1 has advanced.
	c.Lane(0).ScheduleAt(9, func(Time) { ran++ })
	c.Lane(1).ScheduleAt(3, func(Time) { ran++ })
	c.Run(2)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if s := c.Stats(); s.Stalled == 0 {
		t.Fatalf("expected lookahead stalls, got stats %+v", s)
	}
}

// TestConductorDrainsSingleLane pins the drain fast path: when only
// one region lane holds events and the global lane is empty, the lane
// runs to completion without per-millisecond barriers.
func TestConductorDrainsSingleLane(t *testing.T) {
	c := NewConductor(3)
	left := 1000
	var h Handler
	h = handlerFunc(func(now Time, a, b uint64) {
		if left--; left > 0 {
			c.Lane(2).ScheduleCall(1, h, 0, 0)
		}
	})
	c.Lane(2).ScheduleCall(0, h, 0, 0)
	c.Run(3)
	if left != 0 {
		t.Fatalf("chain left %d events unrun", left)
	}
	if s := c.Stats(); s.Windows != 1 {
		t.Fatalf("expected a single drain window, got stats %+v", s)
	}
}

// handlerFunc adapts a function to the Handler interface for tests.
type handlerFunc func(now Time, a, b uint64)

func (f handlerFunc) HandleEvent(now Time, a, b uint64) { f(now, a, b) }
