package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1000 || Minute != 60000 || Hour != 3600000 {
		t.Fatal("time constants wrong")
	}
	if (2 * Second).Duration() != 2*time.Second {
		t.Fatal("duration conversion wrong")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("seconds conversion wrong")
	}
	if FromDuration(3*time.Second+500*time.Millisecond) != 3500 {
		t.Fatal("FromDuration wrong")
	}
	if (Second).String() != "1s" {
		t.Fatalf("string: %q", Second.String())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock: %v", e.Now())
	}
	if e.Processed() != 3 {
		t.Fatalf("processed: %d", e.Processed())
	}
}

func TestEngineFIFOTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order not FIFO at %d: %v", i, v)
		}
	}
}

// TestEngineOrderedTies pins the ordered-band contract: at an equal
// timestamp, every FIFO-scheduled event runs before every ordered
// event, and ordered events run in ascending key order no matter what
// order the ScheduleCallAtOrdered calls arrived in.
func TestEngineOrderedTies(t *testing.T) {
	e := NewEngine()
	var order []uint64
	h := handlerFunc(func(_ Time, a, _ uint64) { order = append(order, a) })
	// Ordered events submitted with shuffled keys, before the FIFO ones.
	for _, key := range []uint64{40, 10, 30, 20} {
		e.ScheduleCallAtOrdered(5, h, 100+key, 0, key)
	}
	e.ScheduleCallAt(5, h, 1, 0)
	e.ScheduleCallAt(5, h, 2, 0)
	e.Run()
	want := []uint64{1, 2, 110, 120, 130, 140}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tie order: got %v, want %v", order, want)
		}
	}
	if e.Stats().Scheduled != 6 {
		t.Fatalf("scheduled: %d, want 6", e.Stats().Scheduled)
	}
}

// TestEngineOrderedPastClamp mirrors the FIFO clamp: an ordered event
// aimed at the past runs at the current clock, never before it.
func TestEngineOrderedPastClamp(t *testing.T) {
	e := NewEngine()
	var got Time
	h := handlerFunc(func(now Time, _, _ uint64) { got = now })
	e.Schedule(50, func(now Time) {
		e.ScheduleCallAtOrdered(10, h, 0, 0, 1)
	})
	e.Run()
	if got != 50 {
		t.Fatalf("clamped ordered event ran at %d, want 50", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func(now Time) {
		fired = append(fired, now)
		e.Schedule(5, func(now Time) {
			fired = append(fired, now)
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired: %v", fired)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(now Time) {
		e.Schedule(-100, func(inner Time) {
			if inner < now {
				t.Errorf("event ran in the past: %v < %v", inner, now)
			}
		})
	})
	e.Run()
}

func TestEngineNilEventIgnored(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, nil)
	e.Run()
	if e.Processed() != 0 {
		t.Fatal("nil event should be ignored")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("want 3 events before stop, got %d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending: %d", e.Pending())
	}
	// A later Run resumes.
	e.Run()
	if count != 10 {
		t.Fatalf("resume: %d", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired: %v", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock should advance to deadline: %v", e.Now())
	}
	e.RunFor(8)
	if len(fired) != 4 || e.Now() != 20 {
		t.Fatalf("fired %v now %v", fired, e.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.ScheduleAt(50, func(now Time) { at = now })
	e.Run()
	if at != 50 {
		t.Fatalf("at: %v", at)
	}
	// Past absolute times clamp to now.
	e.ScheduleAt(10, func(now Time) { at = now })
	e.Run()
	if at != 50 {
		t.Fatalf("past event should run at now: %v", at)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// Forks with different labels from identical parents must produce
	// different streams; identical labels identical streams.
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	f1 := p1.Fork("mining")
	f2 := p2.Fork("mining")
	if f1.Uint64() != f2.Uint64() {
		t.Fatal("same label fork must match")
	}
	p3 := NewRNG(7)
	g := p3.Fork("network")
	h := NewRNG(7).Fork("mining")
	if g.Uint64() == h.Uint64() {
		t.Fatal("different label forks should differ")
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exponential(13300)
	}
	mean := sum / n
	if math.Abs(mean-13300) > 200 {
		t.Fatalf("exponential mean: want ~13300, got %v", mean)
	}
	if g.Exponential(0) != 0 || g.Exponential(-1) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestExpTimeNonNegative(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if d := g.ExpTime(100); d < 0 {
			t.Fatal("negative exponential time")
		}
	}
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(3)
	if g.Bernoulli(0) || g.Bernoulli(-1) {
		t.Fatal("p<=0 must be false")
	}
	if !g.Bernoulli(1) || !g.Bernoulli(2) {
		t.Fatal("p>=1 must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("bernoulli(0.3): got %v", frac)
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("log-normal must be positive")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(5)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[g.Zipf(10, 1.2)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("zipf not skewed: first %d last %d", counts[0], counts[9])
	}
	if g.Zipf(1, 1.2) != 0 || g.Zipf(0, 1.2) != 0 {
		t.Fatal("degenerate zipf must return 0")
	}
}

func TestWeightedChoice(t *testing.T) {
	g := NewRNG(6)
	counts := make([]int, 3)
	weights := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		idx, err := g.WeightedChoice(weights)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero weight drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight ratio: want ~3, got %v", ratio)
	}
	if _, err := g.WeightedChoice([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights must error")
	}
	if _, err := g.WeightedChoice(nil); err == nil {
		t.Fatal("empty weights must error")
	}
}

func TestWeightedChoiceInRangeProperty(t *testing.T) {
	f := func(seed uint64, raw []float64) bool {
		g := NewRNG(seed)
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, w := range raw {
			w = math.Abs(w)
			if math.IsInf(w, 0) || math.IsNaN(w) {
				w = 1
			}
			weights[i] = w
			if w > 0 {
				anyPositive = true
			}
		}
		idx, err := g.WeightedChoice(weights)
		if !anyPositive {
			return err != nil
		}
		return err == nil && idx >= 0 && idx < len(weights) && weights[idx] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleAndPerm(t *testing.T) {
	g := NewRNG(8)
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(g, xs)
	if len(xs) != 5 {
		t.Fatal("shuffle changed length")
	}
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	for i := 1; i <= 5; i++ {
		if !seen[i] {
			t.Fatalf("shuffle lost element %d", i)
		}
	}
	p := g.Perm(4)
	seenIdx := map[int]bool{}
	for _, x := range p {
		seenIdx[x] = true
	}
	if len(seenIdx) != 4 {
		t.Fatalf("perm not a permutation: %v", p)
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		g := NewRNG(99)
		var out []Time
		var tick func(Time)
		count := 0
		tick = func(now Time) {
			out = append(out, now)
			count++
			if count < 50 {
				e.Schedule(g.ExpTime(100), tick)
			}
		}
		e.Schedule(0, tick)
		e.Run()
		return out
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatal("replay length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
