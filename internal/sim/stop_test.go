package sim

import "testing"

// The Stop contract, pinned end to end: Stop halts at most one Run*
// call. Issued mid-run it halts that run; issued while idle it inhibits
// exactly the next call. Either way the queue survives and the call
// after that resumes. These tests exist because Run/RunUntil once reset
// the flag on entry, silently discarding any pre-run Stop.

// TestStopBeforeRunPreventsExecution: a Stop issued before Run starts
// must not be discarded — the inhibited Run executes nothing, and the
// rerun drains the intact queue.
func TestStopBeforeRunPreventsExecution(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 4; i++ {
		e.ScheduleAt(Time(10*i), func(Time) { ran++ })
	}
	e.Stop()
	e.Run()
	if ran != 0 {
		t.Fatalf("inhibited Run executed %d events, want 0", ran)
	}
	if e.Pending() != 4 {
		t.Fatalf("inhibited Run left %d pending, want 4", e.Pending())
	}
	e.Run()
	if ran != 4 {
		t.Fatalf("rerun executed %d events, want 4", ran)
	}
}

// TestStopBeforeRunUntilLeavesClock: an inhibited RunUntil must not
// advance the clock to its deadline — time only moves when events can.
func TestStopBeforeRunUntilLeavesClock(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(5, func(Time) {})
	e.Stop()
	e.RunUntil(100)
	if e.Now() != 0 {
		t.Fatalf("inhibited RunUntil advanced clock to %v, want 0", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("inhibited RunUntil left %d pending, want 1", e.Pending())
	}
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("rerun advanced clock to %v, want 100", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("rerun left %d pending, want 0", e.Pending())
	}
}

// TestStopInsideCallbackThenRerun: a mid-run Stop finishes the current
// event, halts the run with the queue intact, and — because Stop is
// one-shot — the next Run resumes rather than being inhibited.
func TestStopInsideCallbackThenRerun(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 6; i++ {
		e.ScheduleAt(Time(i), func(Time) {
			ran++
			if ran == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("halted Run executed %d events, want 2", ran)
	}
	if e.Pending() != 4 {
		t.Fatalf("halted Run left %d pending, want 4", e.Pending())
	}
	e.Run()
	if ran != 6 {
		t.Fatalf("resumed Run executed %d events, want 6", ran)
	}
}

// TestStopIsOneShot: two Stops before two Runs inhibit both; a third
// Run with no pending Stop executes normally.
func TestStopIsOneShot(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(0, func(Time) { ran++ })
	e.Stop()
	e.Run()
	e.Stop()
	e.Run()
	if ran != 0 {
		t.Fatalf("inhibited Runs executed %d events, want 0", ran)
	}
	e.Run()
	if ran != 1 {
		t.Fatalf("third Run executed %d events, want 1", ran)
	}
}
