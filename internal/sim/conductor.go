// Sharded intra-run execution: a Conductor advances several Engines —
// one "global" lane plus one lane per node partition — in conservative
// lookahead windows, so one big run can use multiple cores without
// giving up determinism.
//
// The decomposition is fixed: the lane layout, every lane's event
// schedule and every RNG draw are identical regardless of how many
// worker goroutines execute the region lanes. Worker count is purely a
// throughput knob, which is what makes sharded artifacts byte-identical
// across shard settings.
//
// Each window proceeds in three strictly ordered steps:
//
//  1. Merge: the owner-supplied Merge hook drains cross-lane traffic
//     buffered during the previous window into the destination lanes'
//     queues, in a deterministic order (the p2p layer sorts by
//     (arrival, source lane, emission index)).
//  2. Phase A: if the global lane owns the earliest event, it runs
//     solo up to that timestamp. The global lane is a pure source
//     (mining, workload, fault timers): it may touch any lane's state
//     directly because every region engine is idle here.
//  3. Phase B: region lanes run concurrently, each up to a per-lane
//     deadline no later than the earliest instant anything outside the
//     lane could affect it — the global lane's next event, or another
//     region lane's next event plus the minimum cross-lane delay
//     (1 ms, the transport's MinDelayMillis floor).
//
// Region lanes never write each other's state; cross-lane sends go
// into per-source buffers and wait for the next Merge. That, plus the
// idle-engines rule in phase A, is the entire memory model.
package sim

import (
	"math"
	"sync"
)

// maxTime is the "no constraint" sentinel for window deadlines.
const maxTime = Time(math.MaxInt64)

// ConductorStats counts window-loop activity. All fields are pure
// functions of the simulation (never of worker count or wall time), so
// they are safe to fold into deterministic telemetry.
type ConductorStats struct {
	// Windows counts barrier-to-barrier iterations that had any event.
	Windows uint64
	// GlobalWindows counts windows in which the global lane ran (phase A).
	GlobalWindows uint64
	// LaneWindows counts region-lane executions across all windows.
	LaneWindows uint64
	// Stalled counts lane-windows in which a region lane held pending
	// events but its lookahead deadline preceded all of them — the
	// conservative-lookahead stall metric.
	Stalled uint64
	// Merged counts cross-lane messages moved into destination queues.
	Merged uint64
}

// Conductor coordinates one global lane (index 0) and N region lanes
// (indices 1..N) through the window loop described in the package
// comment. It owns only scheduling; buffering and draining cross-lane
// traffic belongs to the transport via the Merge hook.
type Conductor struct {
	lanes []*Engine

	// Merge drains cross-lane buffers into destination lanes and
	// returns how many messages it moved. Called single-threaded at
	// every window start (all lanes idle). May be nil.
	Merge func() int

	// AfterGlobal runs single-threaded after each phase A, before any
	// region lane starts. The transport uses it to presize shared
	// append-only arenas (item bitsets, block bodies) so phase B never
	// reallocates them concurrently. May be nil.
	AfterGlobal func()

	stats ConductorStats
}

// NewConductor creates a conductor with one global lane plus regions
// region lanes, all engines fresh at time zero.
func NewConductor(regions int) *Conductor {
	if regions < 1 {
		panic("sim: conductor needs at least one region lane")
	}
	c := &Conductor{lanes: make([]*Engine, 1+regions)}
	for i := range c.lanes {
		c.lanes[i] = NewEngine()
	}
	return c
}

// Global returns the global lane (mining, workload, fault timers).
func (c *Conductor) Global() *Engine { return c.lanes[0] }

// Lane returns region lane r (0-based region index).
func (c *Conductor) Lane(r int) *Engine { return c.lanes[1+r] }

// Regions returns the number of region lanes.
func (c *Conductor) Regions() int { return len(c.lanes) - 1 }

// Stats snapshots the window-loop counters.
func (c *Conductor) Stats() ConductorStats { return c.stats }

// Now returns the maximum clock across lanes — the frontier the run
// has reached. Lane clocks may legitimately trail it.
func (c *Conductor) Now() Time {
	var t Time
	for _, e := range c.lanes {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// laneJob is one phase-B work item: run lane until deadline (or drain
// it completely when drain is set).
type laneJob struct {
	lane     int
	deadline Time
	drain    bool
}

// Run executes the window loop until every lane drains and the Merge
// hook has nothing left to move. workers bounds the goroutines that
// execute phase B; it is clamped to [1, Regions()] and has no effect on
// the schedule, only on wall-clock time.
func (c *Conductor) Run(workers int) {
	regions := len(c.lanes) - 1
	if workers < 1 {
		workers = 1
	}
	if workers > regions {
		workers = regions
	}

	jobs := make(chan laneJob)
	var window sync.WaitGroup // one phase B barrier per window
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for j := range jobs {
				e := c.lanes[j.lane]
				if j.drain {
					e.Run()
				} else {
					e.RunUntil(j.deadline)
				}
				window.Done()
			}
		}()
	}
	defer func() {
		close(jobs)
		pool.Wait()
	}()

	next := make([]Time, len(c.lanes))
	has := make([]bool, len(c.lanes))
	snapshot := func() (min Time, any bool) {
		min = maxTime
		for i, e := range c.lanes {
			next[i], has[i] = e.NextEventAt()
			if has[i] && next[i] < min {
				min, any = next[i], true
			}
		}
		return min, any
	}

	for {
		merged := 0
		if c.Merge != nil {
			merged = c.Merge()
		}
		c.stats.Merged += uint64(merged)

		t, any := snapshot()
		if !any {
			if merged == 0 {
				return
			}
			continue
		}
		c.stats.Windows++

		// Phase A: the global lane runs solo when it owns the earliest
		// event. Global events at t execute before region events at t —
		// sound because the global lane is a pure source: region lanes
		// never write global state, so no region event at t can change
		// what the global lane does at t.
		if has[0] && next[0] <= t {
			c.lanes[0].RunUntil(t)
			c.stats.GlobalWindows++
			if c.AfterGlobal != nil {
				c.AfterGlobal()
			}
			// Phase A schedules fresh work: same-lane deliveries land on
			// region queues directly, but an injected block's cross-lane
			// sends sit in the transport's buffers — drain them NOW, or a
			// region lane could run past an arrival this window's first
			// merge never saw. Then re-snapshot so the phase B deadlines
			// see everything phase A produced.
			if c.Merge != nil {
				c.stats.Merged += uint64(c.Merge())
			}
			snapshot()
		}

		// Phase B: each region lane may run strictly past its own next
		// event, up to the earliest external influence. Influences are
		// (a) the global lane's next event, which can mutate any lane's
		// state directly at that instant, and (b) another region lane's
		// next event plus the 1 ms minimum cross-lane delay — a message
		// emitted at u arrives no earlier than u+1, and it only enters
		// this lane's queue at a future Merge anyway.
		for i := 1; i < len(c.lanes); i++ {
			if !has[i] {
				continue
			}
			d := maxTime
			if has[0] && next[0]-1 < d {
				d = next[0] - 1
			}
			for j := 1; j < len(c.lanes); j++ {
				if j == i || !has[j] {
					continue
				}
				if next[j] < d {
					d = next[j]
				}
			}
			if d < next[i] {
				c.stats.Stalled++
				continue
			}
			c.stats.LaneWindows++
			window.Add(1)
			jobs <- laneJob{lane: i, deadline: d, drain: d == maxTime}
		}
		window.Wait()
	}
}
