// Sharded intra-run execution: a Conductor advances several Engines —
// one "global" lane plus one lane per node partition — in conservative
// lookahead windows, so one big run can use multiple cores without
// giving up determinism.
//
// The decomposition is fixed: the lane layout, every lane's event
// schedule and every RNG draw are identical regardless of how many
// worker goroutines execute the region lanes. Worker count is purely a
// throughput knob, which is what makes sharded artifacts byte-identical
// across shard settings.
//
// Each window proceeds in three strictly ordered steps:
//
//  1. Merge: the owner-supplied Merge hook drains cross-lane traffic
//     buffered during the previous window into the destination lanes'
//     queues, in a deterministic order (the p2p layer sorts by
//     (arrival, source lane, emission index)).
//  2. Phase A: if the global lane owns the earliest event, it runs
//     solo up to that timestamp. The global lane is a pure source
//     (mining, workload, fault timers): it may touch any lane's state
//     directly because every region engine is idle here.
//  3. Phase B: region lanes run concurrently, each up to a per-lane
//     deadline no later than the earliest instant anything outside the
//     lane could affect it — the global lane's next lane-touching
//     event (next event, or the owner's GlobalHorizon when nearer
//     global events are certified internal), or another region lane's
//     next event plus the minimum cross-lane delay for that ordered
//     lane pair (SetBounds; uniform 1 ms — the transport's
//     MinDelayMillis floor — unless the owner installs a
//     topology-aware matrix).
//
// Region lanes never write each other's state; cross-lane sends go
// into per-source buffers and wait for the next Merge. That, plus the
// idle-engines rule in phase A, is the entire memory model.
package sim

import (
	"math"
	"math/bits"
	"sync"
)

// maxTime is the "no constraint" sentinel for window deadlines.
const maxTime = Time(math.MaxInt64)

// Never is the GlobalHorizon return value declaring that no pending
// global-lane event can touch region-lane state.
const Never = Time(math.MaxInt64)

// WindowWidthBuckets is the number of log2 buckets in a per-pair
// window-width histogram: bucket 0 counts stalls (width 0), bucket k
// counts widths in [2^(k-1), 2^k) milliseconds, and the last bucket
// absorbs everything wider.
const WindowWidthBuckets = 16

// WidthBucket returns the histogram bucket index for a phase-B window
// width in milliseconds (0 = stalled).
func WidthBucket(width Time) int {
	if width <= 0 {
		return 0
	}
	n := bits.Len64(uint64(width))
	if n > WindowWidthBuckets-1 {
		n = WindowWidthBuckets - 1
	}
	return n
}

// PairWindowStats aggregates the phase-B windows in which one lane was
// the binding lookahead constraint on another. Like ConductorStats,
// every field is a pure function of the simulation.
type PairWindowStats struct {
	// Count is the number of windows the (src → dst) pair bound,
	// stalled windows included.
	Count uint64
	// Stalled counts the bound windows whose deadline preceded the
	// destination lane's next event (width 0, nothing ran).
	Stalled uint64
	// WidthSum is the total width in milliseconds across the bound
	// windows, where width = deadline − next(dst) + 1 is the span of
	// the destination lane's own pending work the window covered.
	WidthSum uint64
	// Widths is the log2 width histogram (see WindowWidthBuckets).
	Widths [WindowWidthBuckets]uint64
}

// ConductorStats counts window-loop activity. All fields are pure
// functions of the simulation (never of worker count or wall time), so
// they are safe to fold into deterministic telemetry.
type ConductorStats struct {
	// Windows counts barrier-to-barrier iterations that had any event.
	Windows uint64
	// GlobalWindows counts windows in which the global lane ran (phase A).
	GlobalWindows uint64
	// LaneWindows counts region-lane executions across all windows.
	LaneWindows uint64
	// Stalled counts lane-windows in which a region lane held pending
	// events but its lookahead deadline preceded all of them — the
	// conservative-lookahead stall metric.
	Stalled uint64
	// Merged counts cross-lane messages moved into destination queues.
	Merged uint64
	// Pairs[src][dst] aggregates the windows in which lane src was the
	// binding constraint on lane dst's deadline (lane indices: 0 is
	// the global lane, 1..N the region lanes; dst row 0 is unused).
	// Unconstrained drain windows — no other lane held events — are
	// counted in LaneWindows only.
	Pairs [][]PairWindowStats
}

// Conductor coordinates one global lane (index 0) and N region lanes
// (indices 1..N) through the window loop described in the package
// comment. It owns only scheduling; buffering and draining cross-lane
// traffic belongs to the transport via the Merge hook.
type Conductor struct {
	lanes []*Engine

	// Merge drains cross-lane buffers into destination lanes and
	// returns how many messages it moved. Called single-threaded at
	// every window start (all lanes idle). May be nil.
	Merge func() int

	// AfterGlobal runs single-threaded after each phase A, before any
	// region lane starts. The transport uses it to presize shared
	// append-only arenas (item bitsets, block bodies) so phase B never
	// reallocates them concurrently. May be nil.
	AfterGlobal func()

	// GlobalHorizon optionally reports the earliest simulated time at
	// which the global lane might next touch region-lane state (inject
	// a block at a node, flip a fault, submit a transaction). Global
	// events before that horizon are internal — they read and write
	// global-lane state only — and since region lanes never write
	// global state, region events commute with them: a region lane may
	// safely run past an internal global event's timestamp. When the
	// hook is set, phase B bounds each lane by
	// max(next(global), GlobalHorizon()) − 1 instead of
	// next(global) − 1, so a burst of internal bookkeeping events (for
	// example per-pool head-visibility updates after a block) no longer
	// pins every lane's deadline. The hook is consulted once per
	// window, after phase A, and must be a pure function of simulation
	// state — never of worker count or wall time. Returning any value
	// ≤ next(global) is always sound (it restores the conservative
	// bound); returning Never declares that nothing pending on the
	// global lane can touch a region lane. May be nil.
	GlobalHorizon func() Time

	// dist[j][i] (lane indices, region rows/cols only) is the minimum
	// total delay a causal chain of cross-lane messages originating in
	// region lane j can accumulate before it affects region lane i:
	// the all-pairs shortest path over the installed per-pair bound
	// matrix, with dist[i][i] the shortest round trip through another
	// lane (a lane's own emissions can be relayed back to it).
	// Initialized to the closure of the uniform 1 ms matrix.
	dist [][]Time

	stats ConductorStats
	pairs [][]PairWindowStats
}

// infTime marks "no path" entries in the bound closure. Kept well
// below maxTime so next[j]+dist-1 cannot overflow.
const infTime = maxTime / 4

// NewConductor creates a conductor with one global lane plus regions
// region lanes, all engines fresh at time zero.
func NewConductor(regions int) *Conductor {
	if regions < 1 {
		panic("sim: conductor needs at least one region lane")
	}
	c := &Conductor{lanes: make([]*Engine, 1+regions)}
	for i := range c.lanes {
		c.lanes[i] = NewEngine()
	}
	uniform := make([][]Time, regions)
	for i := range uniform {
		uniform[i] = make([]Time, regions)
		for j := range uniform[i] {
			uniform[i][j] = 1
		}
	}
	c.SetBounds(uniform)
	return c
}

// Global returns the global lane (mining, workload, fault timers).
func (c *Conductor) Global() *Engine { return c.lanes[0] }

// Lane returns region lane r (0-based region index).
func (c *Conductor) Lane(r int) *Engine { return c.lanes[1+r] }

// Regions returns the number of region lanes.
func (c *Conductor) Regions() int { return len(c.lanes) - 1 }

// SetBounds installs a per-lane-pair lookahead bound matrix:
// bounds[j][i] (0-based region indices) is the minimum delay any
// single cross-lane message from region lane j to region lane i can
// have. The owner must guarantee the bound — for the p2p transport it
// is the latency model's MinPairDelay, which faults can only lengthen
// (link extra-delay ≥ 0) or drop entirely (partitions), never
// undercut. Entries are clamped to at least 1 ms, the uniform default
// that is always sound for a transport honoring the MinDelayMillis
// floor. Must be called before Run.
//
// The deadline computation does not use the raw matrix directly: a
// lane is influenced not only by another lane's next message but by
// whole causal chains (j sends to k, k's relay sends onward to i), and
// a direct bound can exceed a two-hop path (in the default geo matrix
// WE→OC is bounded at 35 ms directly but only 31 ms via NA). SetBounds
// therefore stores the all-pairs shortest-path closure, including the
// diagonal as the shortest round trip through another lane — a lane's
// own emissions can be relayed back to it, so even a lane running solo
// may not outrun its own round-trip time. Ignoring either effect lets
// a lane's clock pass a future arrival, which the engine would then
// silently clamp forward (a late, physically wrong delivery); the
// transport's merge asserts this never happens.
func (c *Conductor) SetBounds(bounds [][]Time) {
	regions := len(c.lanes) - 1
	if len(bounds) != regions {
		panic("sim: bound matrix must be Regions()×Regions()")
	}
	// dist is 1-based on lane indices; row/col 0 (global) unused.
	dist := make([][]Time, 1+regions)
	dist[0] = make([]Time, 1+regions)
	for j := 0; j < regions; j++ {
		if len(bounds[j]) != regions {
			panic("sim: bound matrix must be Regions()×Regions()")
		}
		row := make([]Time, 1+regions)
		for i := 0; i < regions; i++ {
			v := bounds[j][i]
			if v < 1 {
				v = 1
			}
			if i == j {
				// Intra-lane sends never cross the merge; the diagonal
				// is recomputed below as the min round trip.
				v = infTime
			}
			row[1+i] = v
		}
		dist[1+j] = row
	}
	// Floyd–Warshall over the region lanes. The infinite diagonal
	// start means dist[i][i] converges to the shortest non-empty cycle
	// (all weights are ≥ 1, so shortest walks are simple paths/cycles).
	for k := 1; k <= regions; k++ {
		for j := 1; j <= regions; j++ {
			for i := 1; i <= regions; i++ {
				if d := dist[j][k] + dist[k][i]; d < dist[j][i] {
					dist[j][i] = d
				}
			}
		}
	}
	c.dist = dist
}

// Stats snapshots the window-loop counters, per-pair window histogram
// included.
func (c *Conductor) Stats() ConductorStats {
	s := c.stats
	if c.pairs != nil {
		s.Pairs = make([][]PairWindowStats, len(c.pairs))
		for i := range c.pairs {
			s.Pairs[i] = append([]PairWindowStats(nil), c.pairs[i]...)
		}
	}
	return s
}

// recordPair folds one bound phase-B window into the pair histogram.
// src and dst are lane indices; width 0 means the window stalled.
func (c *Conductor) recordPair(src, dst int, width Time) {
	if c.pairs == nil {
		c.pairs = make([][]PairWindowStats, len(c.lanes))
		for i := range c.pairs {
			c.pairs[i] = make([]PairWindowStats, len(c.lanes))
		}
	}
	p := &c.pairs[src][dst]
	p.Count++
	if width <= 0 {
		p.Stalled++
	} else {
		p.WidthSum += uint64(width)
	}
	p.Widths[WidthBucket(width)]++
}

// Now returns the maximum clock across lanes — the frontier the run
// has reached. Lane clocks may legitimately trail it.
func (c *Conductor) Now() Time {
	var t Time
	for _, e := range c.lanes {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Frontier returns the timestamp of the last event any lane executed.
// Now is the wrong end-of-run clock for artifacts: a lane's final
// RunUntil coasts to its granted deadline, which overshoots the last
// real event by a margin set by the lookahead bound matrix — so two
// runs differing only in window sizing would disagree on Now while
// executing the identical event sequence. Frontier is a pure function
// of the events themselves.
func (c *Conductor) Frontier() Time {
	var t Time
	for _, e := range c.lanes {
		if at := e.LastEventAt(); at > t {
			t = at
		}
	}
	return t
}

// laneJob is one phase-B work item: run lane until deadline (or drain
// it completely when drain is set).
type laneJob struct {
	lane     int
	deadline Time
	drain    bool
}

// Run executes the window loop until every lane drains and the Merge
// hook has nothing left to move. workers bounds the goroutines that
// execute phase B; it is clamped to [1, Regions()] and has no effect on
// the schedule, only on wall-clock time.
func (c *Conductor) Run(workers int) {
	regions := len(c.lanes) - 1
	if workers < 1 {
		workers = 1
	}
	if workers > regions {
		workers = regions
	}

	jobs := make(chan laneJob)
	var window sync.WaitGroup // one phase B barrier per window
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for j := range jobs {
				e := c.lanes[j.lane]
				if j.drain {
					e.Run()
				} else {
					e.RunUntil(j.deadline)
				}
				window.Done()
			}
		}()
	}
	defer func() {
		close(jobs)
		pool.Wait()
	}()

	next := make([]Time, len(c.lanes))
	has := make([]bool, len(c.lanes))
	snapshot := func() (min Time, any bool) {
		min = maxTime
		for i, e := range c.lanes {
			next[i], has[i] = e.NextEventAt()
			if has[i] && next[i] < min {
				min, any = next[i], true
			}
		}
		return min, any
	}

	for {
		merged := 0
		if c.Merge != nil {
			merged = c.Merge()
		}
		c.stats.Merged += uint64(merged)

		t, any := snapshot()
		if !any {
			if merged == 0 {
				return
			}
			continue
		}
		c.stats.Windows++

		// Phase A: the global lane runs solo when it owns the earliest
		// event. Global events at t execute before region events at t —
		// sound because the global lane is a pure source: region lanes
		// never write global state, so no region event at t can change
		// what the global lane does at t.
		if has[0] && next[0] <= t {
			c.lanes[0].RunUntil(t)
			c.stats.GlobalWindows++
			if c.AfterGlobal != nil {
				c.AfterGlobal()
			}
			// Phase A schedules fresh work: same-lane deliveries land on
			// region queues directly, but an injected block's cross-lane
			// sends sit in the transport's buffers — drain them NOW, or a
			// region lane could run past an arrival this window's first
			// merge never saw. Then re-snapshot so the phase B deadlines
			// see everything phase A produced.
			if c.Merge != nil {
				c.stats.Merged += uint64(c.Merge())
			}
			snapshot()
		}

		// Phase B: each region lane may run strictly past its own next
		// event, up to the earliest external influence. Influences are
		// (a) the global lane's next event that can mutate lane state
		// directly — next[0] itself, or the owner's GlobalHorizon when
		// it certifies that nearer global events are internal — and
		// (b) any lane's next event plus the minimum causal-chain delay
		// from that lane to this one (the SetBounds closure): a chain
		// starting at lane j's event at u cannot produce an arrival
		// here before u+dist[j][i], and it only enters this lane's
		// queue at a future Merge anyway. The j == i term is the
		// round-trip constraint — this lane's own emissions coming back
		// through another lane — and applies only when a Merge hook
		// exists: without one there is no cross-lane transport, so a
		// solo lane may drain freely.
		global := next[0]
		if c.GlobalHorizon != nil {
			if h := c.GlobalHorizon(); h > global {
				global = h
			}
		}
		for i := 1; i < len(c.lanes); i++ {
			if !has[i] {
				continue
			}
			d := maxTime
			src := -1 // binding lane for the pair histogram
			if has[0] && global-1 < d {
				d = global - 1
				src = 0
			}
			for j := 1; j < len(c.lanes); j++ {
				if !has[j] || (j == i && c.Merge == nil) {
					continue
				}
				dd := c.dist[j][i]
				if dd >= infTime {
					continue
				}
				if t := next[j] + dd - 1; t < d {
					d = t
					src = j
				}
			}
			if d < next[i] {
				c.stats.Stalled++
				c.recordPair(src, i, 0)
				continue
			}
			c.stats.LaneWindows++
			if src >= 0 {
				c.recordPair(src, i, d-next[i]+1)
			}
			window.Add(1)
			jobs <- laneJob{lane: i, deadline: d, drain: d == maxTime}
		}
		window.Wait()
	}
}
