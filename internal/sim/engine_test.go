package sim

import (
	"testing"
)

// TestStopInsideEvent verifies that Stop called from within an event
// finishes that event, runs nothing further, and leaves the queue
// intact for a later resume.
func TestStopInsideEvent(t *testing.T) {
	e := NewEngine()
	var ran []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(Time(10*i), func(Time) {
			ran = append(ran, i)
			if i == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("ran %v, want events 0-2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock stopped at %v, want 20", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 5 {
		t.Fatalf("resume ran %v, want all 5", ran)
	}
}

// TestRunUntilEqualTimestampBurst schedules a large burst at one
// timestamp, interleaved with events just past the deadline, and
// verifies RunUntil executes exactly the burst in FIFO order.
func TestRunUntilEqualTimestampBurst(t *testing.T) {
	e := NewEngine()
	const burst = 500
	var order []int
	for i := 0; i < burst; i++ {
		i := i
		// Interleave: a deadline event and a past-deadline event per
		// iteration, so heap shape cannot accidentally produce FIFO.
		e.Schedule(100, func(Time) { order = append(order, i) })
		e.Schedule(101, func(Time) { t.Error("past-deadline event ran") })
	}
	e.RunUntil(100)
	if len(order) != burst {
		t.Fatalf("ran %d burst events, want %d", len(order), burst)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("burst order not FIFO at %d: got %d", i, v)
		}
	}
	if e.Now() != 100 {
		t.Fatalf("clock %v, want 100", e.Now())
	}
}

// TestTimerCancelThenFire covers the cancel-then-fire race: a timer
// stopped before its deadline must not fire, even when another event
// at the exact deadline timestamp still runs, and even when the freed
// slot is immediately reused by a new event.
func TestTimerCancelThenFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	timer := e.NewTimer(func(Time) { fired++ })
	timer.Reset(50)
	sibling := 0
	e.Schedule(50, func(Time) { sibling++ })
	e.Schedule(10, func(Time) {
		if !timer.Stop() {
			t.Error("Stop should report a pending occurrence")
		}
		// Reuse the freed slot at the timer's old deadline.
		e.Schedule(40, func(Time) { sibling++ })
	})
	e.Run()
	if fired != 0 {
		t.Fatalf("cancelled timer fired %d times", fired)
	}
	if sibling != 2 {
		t.Fatalf("sibling events ran %d times, want 2", sibling)
	}
	if timer.Stop() {
		t.Fatal("second Stop should report idle")
	}
	// The handle stays usable after cancellation.
	timer.Reset(5)
	e.Run()
	if fired != 1 {
		t.Fatalf("reset-after-stop fired %d times, want 1", fired)
	}
}

// TestTimerRescheduleInCallback drives a periodic loop entirely from
// the timer's own callback.
func TestTimerRescheduleInCallback(t *testing.T) {
	e := NewEngine()
	var at []Time
	var timer *Timer
	timer = e.NewTimer(func(now Time) {
		at = append(at, now)
		if len(at) < 4 {
			timer.Reset(10)
		}
	})
	timer.Reset(10)
	e.Run()
	want := []Time{10, 20, 30, 40}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
	if timer.Pending() {
		t.Fatal("timer should be idle after the loop ends")
	}
}

// TestTimerResetWhilePending verifies a pending timer moves — both
// later and earlier — and that the occurrence fires exactly once, at
// the final deadline.
func TestTimerResetWhilePending(t *testing.T) {
	e := NewEngine()
	var fired []Time
	timer := e.NewTimer(func(now Time) { fired = append(fired, now) })
	timer.Reset(100)
	e.Schedule(10, func(Time) { timer.Reset(200) })   // push out: fires at 210
	e.Schedule(20, func(Time) { timer.ResetAt(150) }) // pull in: fires at 150
	e.Run()
	if len(fired) != 1 || fired[0] != 150 {
		t.Fatalf("fired %v, want exactly [150]", fired)
	}
	if at, ok := timer.When(); ok {
		t.Fatalf("timer still pending at %v", at)
	}
}

// TestTimerResetAtPastIsMonotonic is the regression test for the
// ResetAt "clamped to now" contract: resetting a timer into the past —
// from callbacks mid-run, onto a pending occurrence, and after
// RunUntil has advanced an idle clock — must never rewind the engine
// clock. Every observed firing time and every Now() reading must be
// non-decreasing.
func TestTimerResetAtPastIsMonotonic(t *testing.T) {
	e := NewEngine()
	var fired []Time
	last := Time(-1)
	observe := func(now Time) {
		if now < last {
			t.Fatalf("clock rewound: event at %v after %v", now, last)
		}
		if e.Now() != now {
			t.Fatalf("Now() = %v inside event at %v", e.Now(), now)
		}
		last = now
	}
	timer := e.NewTimer(func(now Time) { observe(now); fired = append(fired, now) })
	// Abuse 1: re-queue a pending occurrence into the past from a
	// callback. The timer is pending at 500; at t=100 it is reset to
	// t=5, which must clamp to 100 and fire there.
	timer.Reset(500)
	e.Schedule(100, func(now Time) { observe(now); timer.ResetAt(5) })
	e.Schedule(200, func(now Time) { observe(now) })
	e.Run()
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("fired %v, want exactly [100] (clamped to now)", fired)
	}
	// Abuse 2: schedule an idle timer into the past after RunUntil has
	// advanced the clock past every event. The occurrence must fire at
	// the clamped clock, not rewind it.
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock %v after RunUntil, want 1000", e.Now())
	}
	timer.ResetAt(e.Now() - 999)
	if at, ok := timer.When(); !ok || at != 1000 {
		t.Fatalf("pending at %v (ok=%v), want clamp to 1000", at, ok)
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 1000 {
		t.Fatalf("fired %v, want second firing at 1000", fired)
	}
	if e.Now() != 1000 {
		t.Fatalf("clock %v after clamped firing, want 1000", e.Now())
	}
}

// TestTimerFIFOAgainstSchedule asserts the determinism contract: a
// Reset consumes the next sequence number exactly like a Schedule, so
// a timer firing at the same timestamp as plain events keeps its
// schedule-order position.
func TestTimerFIFOAgainstSchedule(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(30, func(Time) { order = append(order, "a") })
	timer := e.NewTimer(func(Time) { order = append(order, "timer") })
	timer.Reset(30)
	e.Schedule(30, func(Time) { order = append(order, "b") })
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "timer" || order[2] != "b" {
		t.Fatalf("order %v, want [a timer b]", order)
	}
}

// TestScheduleCallTyped exercises the closure-free dispatch path,
// including FIFO interleaving with closure events.
type recordingHandler struct {
	calls [][3]uint64 // now, a, b
}

func (r *recordingHandler) HandleEvent(now Time, a, b uint64) {
	r.calls = append(r.calls, [3]uint64{uint64(now), a, b})
}

func TestScheduleCallTyped(t *testing.T) {
	e := NewEngine()
	h := &recordingHandler{}
	e.ScheduleCall(20, h, 1, 10)
	e.ScheduleCall(10, h, 2, 20)
	e.ScheduleCallAt(20, h, 3, 30)
	e.ScheduleCall(-5, h, 4, 40) // clamped to now
	e.Run()
	want := [][3]uint64{{0, 4, 40}, {10, 2, 20}, {20, 1, 10}, {20, 3, 30}}
	if len(h.calls) != len(want) {
		t.Fatalf("calls %v, want %v", h.calls, want)
	}
	for i := range want {
		if h.calls[i] != want[i] {
			t.Fatalf("call %d = %v, want %v", i, h.calls[i], want[i])
		}
	}
	e.ScheduleCall(1, nil, 0, 0)
	e.Run()
	if len(h.calls) != len(want) {
		t.Fatal("nil handler should be ignored")
	}
}

// TestEngineSlotReuse floods the engine through several
// schedule/drain cycles and checks the arena does not grow beyond the
// high-water mark of concurrently pending events.
func TestEngineSlotReuse(t *testing.T) {
	e := NewEngine()
	const pending = 64
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < pending; i++ {
			e.Schedule(Time(i), func(Time) {})
		}
		e.Run()
	}
	if got := len(e.slots); got > pending {
		t.Fatalf("slot arena grew to %d for %d concurrent events", got, pending)
	}
}

// TestPermIntoMatchesPerm asserts the draw-compatibility contract
// between Perm and PermInto.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 513} {
		a := NewRNG(99)
		b := NewRNG(99)
		want := a.Perm(n)
		got := make([]int, n)
		b.PermInto(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto diverged from Perm at %d", n, i)
			}
		}
		// Streams must stay aligned afterwards too.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: RNG streams diverged after draw", n)
		}
	}
}

// TestWeightedMatchesWeightedChoice asserts the precomputed sampler
// reproduces WeightedChoice's picks draw for draw, including zero
// weights and the same RNG stream consumption.
func TestWeightedMatchesWeightedChoice(t *testing.T) {
	weights := []float64{0, 0.3, 0, 0.25, 0.2, 0, 0.15, 0.1}
	w, err := NewWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100_000; i++ {
		want, err := a.WeightedChoice(weights)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Sample(b); got != want {
			t.Fatalf("draw %d: Sample=%d WeightedChoice=%d", i, got, want)
		}
	}
	if _, err := NewWeighted([]float64{0, -1}); err == nil {
		t.Fatal("non-positive weights must error")
	}
	if _, err := NewWeighted(nil); err == nil {
		t.Fatal("empty weights must error")
	}
}

// TestWeightedDistribution checks the sampler's empirical frequencies
// track the weights (the distribution-preservation requirement for
// the mining pool switch-over).
func TestWeightedDistribution(t *testing.T) {
	weights := []float64{1, 2, 0, 5}
	w, err := NewWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(11)
	counts := make([]int, len(weights))
	const n = 400_000
	for i := 0; i < n; i++ {
		counts[w.Sample(g)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero weight drawn %d times", counts[2])
	}
	total := 1.0 + 2 + 5
	for i, c := range counts {
		if weights[i] == 0 {
			continue
		}
		got := float64(c) / n
		want := weights[i] / total
		if got < want-0.01 || got > want+0.01 {
			t.Fatalf("index %d frequency %.4f, want ~%.4f", i, got, want)
		}
	}
}
