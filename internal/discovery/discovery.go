// Package discovery implements a devp2p-discv4-style Kademlia node
// table: 256-bit random node identifiers, XOR distance, k-buckets and
// iterative FindNode lookups.
//
// Ethereum derives neighbor relationships from these random IDs, which
// is why the paper can assert that peer selection is independent of
// geographic location (§III-B1). The reproduction wires its overlay
// either uniformly at random (a statistical shortcut) or through this
// substrate (CampaignConfig.KademliaWiring); a core test checks both
// wirings produce the same geographic findings, validating the
// shortcut.
package discovery

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// IDLen is the identifier length in bytes (devp2p: keccak256 of the
// node key; SHA-256-sized here).
const IDLen = 32

// NodeID is a 256-bit node identifier.
type NodeID [IDLen]byte

// DefaultBucketSize is Kademlia's k (devp2p uses 16).
const DefaultBucketSize = 16

// NumBuckets is the number of distance buckets.
const NumBuckets = IDLen * 8

// RandomID draws a uniformly random identifier.
func RandomID(rng *sim.RNG) NodeID {
	var id NodeID
	for i := 0; i < IDLen; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			id[i+j] = byte(v >> uint(8*j))
		}
	}
	return id
}

// IDFromLabel derives a deterministic identifier from a label.
func IDFromLabel(label string) NodeID {
	return NodeID(sha256.Sum256([]byte(label)))
}

// LogDist returns the logarithmic XOR distance between two IDs: the
// bit index (from the top) of the first differing bit, mapped to
// bucket numbers 1..256; 0 means equal.
func LogDist(a, b NodeID) int {
	for i := 0; i < IDLen; i++ {
		x := a[i] ^ b[i]
		if x != 0 {
			return NumBuckets - 8*i - bits.LeadingZeros8(x)
		}
	}
	return 0
}

// CompareDistance orders two candidate IDs by XOR distance to a
// target: negative when a is closer, positive when b is closer, zero
// when equidistant (a == b).
func CompareDistance(target, a, b NodeID) int {
	for i := 0; i < IDLen; i++ {
		da := a[i] ^ target[i]
		db := b[i] ^ target[i]
		if da != db {
			if da < db {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Table is a Kademlia routing table: one k-sized bucket per
// logarithmic distance.
type Table struct {
	self    NodeID
	k       int
	buckets [NumBuckets + 1][]NodeID
	present map[NodeID]bool
}

// Table errors.
var (
	ErrSelfInsert = errors.New("discovery: cannot insert self")
	ErrBadK       = errors.New("discovery: bucket size must be >= 1")
)

// NewTable creates a table for the given node with bucket size k.
func NewTable(self NodeID, k int) (*Table, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	return &Table{self: self, k: k, present: make(map[NodeID]bool)}, nil
}

// Self returns the table owner's ID.
func (t *Table) Self() NodeID { return t.self }

// Len returns the number of stored IDs.
func (t *Table) Len() int { return len(t.present) }

// Contains reports whether the table holds id.
func (t *Table) Contains(id NodeID) bool { return t.present[id] }

// Add inserts an ID into its distance bucket. It reports whether the
// ID was stored (false for self, duplicates, or a full bucket —
// classic Kademlia keeps old, live entries).
func (t *Table) Add(id NodeID) (bool, error) {
	if id == t.self {
		return false, ErrSelfInsert
	}
	if t.present[id] {
		return false, nil
	}
	b := LogDist(t.self, id)
	if len(t.buckets[b]) >= t.k {
		return false, nil
	}
	t.buckets[b] = append(t.buckets[b], id)
	t.present[id] = true
	return true, nil
}

// Closest returns up to n stored IDs ordered by XOR distance to
// target.
func (t *Table) Closest(target NodeID, n int) []NodeID {
	if n < 1 {
		return nil
	}
	all := make([]NodeID, 0, len(t.present))
	for id := range t.present {
		all = append(all, id)
	}
	sort.Slice(all, func(i, j int) bool {
		return CompareDistance(target, all[i], all[j]) < 0
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Entries returns every stored ID (unordered but deterministic given
// identical insert sequences is NOT guaranteed; callers needing
// determinism should sort).
func (t *Table) Entries() []NodeID {
	out := make([]NodeID, 0, len(t.present))
	for b := range t.buckets {
		out = append(out, t.buckets[b]...)
	}
	return out
}

// Universe is the simulated discovery network: every participant's
// table, addressable for iterative lookups. Discovery messages are not
// latency-modeled — the table converges during a node's long uptime,
// well before measurements start (§II deploys weeks ahead of
// analysis).
type Universe struct {
	tables map[NodeID]*Table
	order  []NodeID
	k      int
}

// Universe errors.
var (
	ErrUnknownNode = errors.New("discovery: unknown node")
	ErrDuplicate   = errors.New("discovery: duplicate node")
)

// NewUniverse creates an empty discovery network with bucket size k.
func NewUniverse(k int) (*Universe, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	return &Universe{tables: make(map[NodeID]*Table), k: k}, nil
}

// Join registers a node.
func (u *Universe) Join(id NodeID) error {
	if _, dup := u.tables[id]; dup {
		return fmt.Errorf("%w: %x", ErrDuplicate, id[:4])
	}
	table, err := NewTable(id, u.k)
	if err != nil {
		return err
	}
	u.tables[id] = table
	u.order = append(u.order, id)
	return nil
}

// Len returns the number of joined nodes.
func (u *Universe) Len() int { return len(u.order) }

// Table returns a node's routing table.
func (u *Universe) Table(id NodeID) (*Table, error) {
	t, ok := u.tables[id]
	if !ok {
		return nil, fmt.Errorf("%w: %x", ErrUnknownNode, id[:4])
	}
	return t, nil
}

// findNode is the remote RPC: ask `who` for its closest entries to
// target.
func (u *Universe) findNode(who, target NodeID, n int) []NodeID {
	t, ok := u.tables[who]
	if !ok {
		return nil
	}
	return t.Closest(target, n)
}

// Lookup performs an iterative Kademlia lookup from a node toward a
// target, returning the k closest IDs found and inserting everything
// learned into the searcher's table (how discv4 fills buckets).
func (u *Universe) Lookup(from, target NodeID, alpha int) ([]NodeID, error) {
	self, ok := u.tables[from]
	if !ok {
		return nil, fmt.Errorf("%w: %x", ErrUnknownNode, from[:4])
	}
	if alpha < 1 {
		alpha = 3
	}
	asked := map[NodeID]bool{from: true}
	candidates := self.Closest(target, u.k)
	for round := 0; round < 24; round++ {
		progressed := false
		// Query the alpha closest unasked candidates.
		queried := 0
		for _, c := range candidates {
			if queried >= alpha {
				break
			}
			if asked[c] {
				continue
			}
			asked[c] = true
			queried++
			for _, learned := range u.findNode(c, target, u.k) {
				if learned == from {
					continue
				}
				if _, err := self.Add(learned); err == nil {
					// Stored or bucket-full; either way it can still
					// advance the lookup frontier.
				}
				candidates = append(candidates, learned)
				progressed = true
			}
		}
		if queried == 0 || !progressed {
			break
		}
		sort.Slice(candidates, func(i, j int) bool {
			return CompareDistance(target, candidates[i], candidates[j]) < 0
		})
		candidates = dedupIDs(candidates)
		if len(candidates) > 4*u.k {
			candidates = candidates[:4*u.k]
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		return CompareDistance(target, candidates[i], candidates[j]) < 0
	})
	candidates = dedupIDs(candidates)
	if len(candidates) > u.k {
		candidates = candidates[:u.k]
	}
	return candidates, nil
}

func dedupIDs(ids []NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// Bootstrap seeds every node with `seeds` random contacts and runs
// `lookups` iterative self-lookups plus random-target lookups per
// node, converging the tables the way a long-running devp2p node
// does.
func (u *Universe) Bootstrap(rng *sim.RNG, seeds, lookups int) error {
	n := len(u.order)
	if n < 2 {
		return nil
	}
	if seeds < 1 {
		seeds = 1
	}
	for _, id := range u.order {
		table := u.tables[id]
		for s := 0; s < seeds; s++ {
			contact := u.order[rng.IntN(n)]
			if contact == id {
				continue
			}
			if _, err := table.Add(contact); err != nil && !errors.Is(err, ErrSelfInsert) {
				return err
			}
		}
	}
	for round := 0; round < lookups; round++ {
		for _, id := range u.order {
			target := id
			if round > 0 {
				target = RandomID(rng)
			}
			if _, err := u.Lookup(id, target, 3); err != nil {
				return err
			}
		}
	}
	return nil
}

// SamplePeers draws up to n peer IDs for a node from its converged
// table, uniformly across stored entries — how a devp2p node picks
// dial targets. Returns an error for unknown nodes.
func (u *Universe) SamplePeers(rng *sim.RNG, id NodeID, n int) ([]NodeID, error) {
	t, ok := u.tables[id]
	if !ok {
		return nil, fmt.Errorf("%w: %x", ErrUnknownNode, id[:4])
	}
	entries := t.Entries()
	sort.Slice(entries, func(i, j int) bool {
		return CompareDistance(id, entries[i], entries[j]) < 0
	})
	sim.Shuffle(rng, entries)
	if len(entries) > n {
		entries = entries[:n]
	}
	return entries, nil
}
