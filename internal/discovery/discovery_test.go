package discovery

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestIDDerivation(t *testing.T) {
	a := IDFromLabel("node-1")
	b := IDFromLabel("node-1")
	c := IDFromLabel("node-2")
	if a != b || a == c {
		t.Fatal("label derivation broken")
	}
	rng := sim.NewRNG(1)
	r1 := RandomID(rng)
	r2 := RandomID(rng)
	if r1 == r2 {
		t.Fatal("random IDs collided")
	}
}

func TestLogDist(t *testing.T) {
	var a NodeID
	if LogDist(a, a) != 0 {
		t.Fatal("self distance must be 0")
	}
	b := a
	b[IDLen-1] = 1 // lowest bit differs
	if LogDist(a, b) != 1 {
		t.Fatalf("lowest-bit distance: %d", LogDist(a, b))
	}
	c := a
	c[0] = 0x80 // highest bit differs
	if LogDist(a, c) != NumBuckets {
		t.Fatalf("highest-bit distance: %d", LogDist(a, c))
	}
}

func TestLogDistSymmetryProperty(t *testing.T) {
	f := func(a, b [IDLen]byte) bool {
		return LogDist(NodeID(a), NodeID(b)) == LogDist(NodeID(b), NodeID(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareDistanceProperty(t *testing.T) {
	// Antisymmetry and consistency with equality.
	f := func(target, a, b [IDLen]byte) bool {
		x := CompareDistance(NodeID(target), NodeID(a), NodeID(b))
		y := CompareDistance(NodeID(target), NodeID(b), NodeID(a))
		if a == b {
			return x == 0 && y == 0
		}
		return x == -y && x != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableAdd(t *testing.T) {
	self := IDFromLabel("self")
	table, err := NewTable(self, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.Add(self); !errors.Is(err, ErrSelfInsert) {
		t.Fatal("self insert must fail")
	}
	a := IDFromLabel("a")
	ok, err := table.Add(a)
	if err != nil || !ok {
		t.Fatalf("add: %v %v", ok, err)
	}
	ok, err = table.Add(a)
	if err != nil || ok {
		t.Fatal("duplicate must not store")
	}
	if !table.Contains(a) || table.Len() != 1 {
		t.Fatal("table state wrong")
	}
	if _, err := NewTable(self, 0); !errors.Is(err, ErrBadK) {
		t.Fatal("k=0 must fail")
	}
}

func TestBucketCapacity(t *testing.T) {
	self := IDFromLabel("self")
	table, err := NewTable(self, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	stored := 0
	perBucket := map[int]int{}
	for i := 0; i < 3000; i++ {
		id := RandomID(rng)
		ok, err := table.Add(id)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			stored++
			perBucket[LogDist(self, id)]++
		}
	}
	if stored != table.Len() {
		t.Fatal("count mismatch")
	}
	for b, n := range perBucket {
		if n > 3 {
			t.Fatalf("bucket %d overflowed: %d", b, n)
		}
	}
	// Top buckets (~half the ID space each) must be full.
	if perBucket[NumBuckets] != 3 || perBucket[NumBuckets-1] != 3 {
		t.Fatalf("top buckets not saturated: %v %v", perBucket[NumBuckets], perBucket[NumBuckets-1])
	}
}

func TestClosestOrdering(t *testing.T) {
	self := IDFromLabel("self")
	table, err := NewTable(self, DefaultBucketSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 500; i++ {
		if _, err := table.Add(RandomID(rng)); err != nil {
			t.Fatal(err)
		}
	}
	target := RandomID(rng)
	got := table.Closest(target, 10)
	if len(got) != 10 {
		t.Fatalf("closest: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if CompareDistance(target, got[i-1], got[i]) > 0 {
			t.Fatal("closest not ordered")
		}
	}
	if table.Closest(target, 0) != nil {
		t.Fatal("n=0 must return nil")
	}
}

func buildUniverse(t *testing.T, n int, seed uint64) (*Universe, *sim.RNG) {
	t.Helper()
	u, err := NewUniverse(DefaultBucketSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		if err := u.Join(RandomID(rng)); err != nil {
			t.Fatal(err)
		}
	}
	return u, rng
}

func TestUniverseJoin(t *testing.T) {
	u, _ := buildUniverse(t, 10, 4)
	if u.Len() != 10 {
		t.Fatalf("len: %d", u.Len())
	}
	id := u.order[0]
	if err := u.Join(id); !errors.Is(err, ErrDuplicate) {
		t.Fatal("duplicate join must fail")
	}
	if _, err := u.Table(id); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Table(IDFromLabel("ghost")); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("unknown table must fail")
	}
	if _, err := NewUniverse(0); !errors.Is(err, ErrBadK) {
		t.Fatal("k=0 universe must fail")
	}
}

func TestBootstrapConverges(t *testing.T) {
	u, rng := buildUniverse(t, 300, 5)
	if err := u.Bootstrap(rng, 3, 3); err != nil {
		t.Fatal(err)
	}
	// Every node's table should hold a healthy population.
	for _, id := range u.order {
		table := u.tables[id]
		if table.Len() < 20 {
			t.Fatalf("node %x table too small: %d", id[:4], table.Len())
		}
	}
}

func TestLookupFindsClosest(t *testing.T) {
	u, rng := buildUniverse(t, 300, 6)
	if err := u.Bootstrap(rng, 3, 3); err != nil {
		t.Fatal(err)
	}
	// Ground truth: globally closest nodes to a fresh target.
	target := RandomID(rng)
	best := make([]NodeID, len(u.order))
	copy(best, u.order)
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && CompareDistance(target, best[j], best[j-1]) < 0; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	got, err := u.Lookup(u.order[0], target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// The lookup's best find should be among the globally closest few
	// (iterative Kademlia converges to the true closest node with
	// high probability in a converged network).
	hit := false
	for _, b := range best[:5] {
		if got[0] == b {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatalf("lookup missed the closest region: got %x", got[0][:4])
	}
	if _, err := u.Lookup(IDFromLabel("ghost"), target, 3); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("unknown source must fail")
	}
}

func TestSamplePeers(t *testing.T) {
	u, rng := buildUniverse(t, 200, 7)
	if err := u.Bootstrap(rng, 3, 2); err != nil {
		t.Fatal(err)
	}
	peers, err := u.SamplePeers(rng, u.order[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 10 {
		t.Fatalf("peers: %d", len(peers))
	}
	seen := map[NodeID]bool{}
	for _, p := range peers {
		if p == u.order[0] {
			t.Fatal("sampled self")
		}
		if seen[p] {
			t.Fatal("duplicate peer")
		}
		seen[p] = true
	}
	if _, err := u.SamplePeers(rng, IDFromLabel("ghost"), 5); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("unknown node must fail")
	}
}

func TestIDsAreLocationIndependentProperty(t *testing.T) {
	// The premise behind §III-B1: IDs carry no structure, so bucket
	// distances between any two random IDs concentrate near the top
	// buckets regardless of who generated them.
	rng := sim.NewRNG(8)
	low := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if LogDist(RandomID(rng), RandomID(rng)) < NumBuckets-8 {
			low++
		}
	}
	// P(dist < 248) = 2^-8 ≈ 0.39%.
	if frac := float64(low) / n; frac > 0.01 {
		t.Fatalf("distance distribution skewed: %v", frac)
	}
}
