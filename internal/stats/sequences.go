package stats

import (
	"fmt"
	"math"
)

// The helpers in this file implement the probabilistic model the paper
// uses in §III-D to compare observed consecutive-block sequences with
// their theoretical likelihood: a pool holding fraction p of the
// hashrate mines each block independently with probability p, so a
// sequence of k consecutive blocks has probability p^k, and over a
// chain of n blocks roughly n*p^k such sequences are expected.

// SequenceProbability returns p^k: the probability that a pool with
// hashrate share p mines k consecutive blocks starting at a given
// height. It returns an error when p is outside [0,1] or k < 1.
func SequenceProbability(p float64, k int) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: hashrate share %v outside [0,1]", p)
	}
	if k < 1 {
		return 0, fmt.Errorf("stats: sequence length %d < 1", k)
	}
	return math.Pow(p, float64(k)), nil
}

// ExpectedSequences returns the expected number of k-length runs of a
// pool with share p over a chain of n blocks, using the paper's
// first-order estimate n * p^k (§III-D computes Ethermine's expected
// 8-block sequences as 2e-5 * 201,086 ≈ 4 exactly this way).
func ExpectedSequences(p float64, k, n int) (float64, error) {
	prob, err := SequenceProbability(p, k)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("stats: chain length %d < 0", n)
	}
	return prob * float64(n), nil
}

// MonthsUntilSequence returns the expected number of month-long
// observation windows (blocksPerMonth blocks each) until one k-length
// sequence by a pool with share p is expected, i.e.
// 1 / (blocksPerMonth * p^k). The paper computes Sparkpool's 9-block
// sequence this way ("at least three months").
func MonthsUntilSequence(p float64, k, blocksPerMonth int) (float64, error) {
	expected, err := ExpectedSequences(p, k, blocksPerMonth)
	if err != nil {
		return 0, err
	}
	if expected == 0 {
		return math.Inf(1), nil
	}
	return 1 / expected, nil
}

// RunLengths scans a sequence of labels and returns, per label, the
// multiset of maximal-run lengths, e.g. labels a,a,b,a yields
// {a:[2,1], b:[1]}. The analysis pipeline feeds main-chain miner
// labels through this to build Fig. 7.
func RunLengths(labels []string) map[string][]int {
	out := make(map[string][]int)
	if len(labels) == 0 {
		return out
	}
	cur := labels[0]
	run := 1
	for _, l := range labels[1:] {
		if l == cur {
			run++
			continue
		}
		out[cur] = append(out[cur], run)
		cur = l
		run = 1
	}
	out[cur] = append(out[cur], run)
	return out
}

// MaxRun returns the longest run in a run-length multiset, or 0 when
// the set is empty.
func MaxRun(runs []int) int {
	max := 0
	for _, r := range runs {
		if r > max {
			max = r
		}
	}
	return max
}

// CountRunsAtLeast returns how many runs are >= k.
func CountRunsAtLeast(runs []int, k int) int {
	n := 0
	for _, r := range runs {
		if r >= k {
			n++
		}
	}
	return n
}
