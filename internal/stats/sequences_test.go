package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSequenceProbabilityPaperValues(t *testing.T) {
	// §III-D: Ethermine at 25.9% share, 8 consecutive blocks:
	// 0.259^8 ≈ 2e-5.
	p, err := SequenceProbability(0.259, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, math.Pow(0.259, 8), 1e-18) {
		t.Fatalf("ethermine 8-seq: got %v", p)
	}
	if p < 1.9e-5 || p > 2.1e-5 {
		t.Fatalf("ethermine 8-seq should be ~2e-5, got %v", p)
	}
}

func TestExpectedSequencesPaperValues(t *testing.T) {
	// §III-D: 2e-5 * 201,086 ≈ 4 expected Ethermine 8-sequences/month.
	e, err := ExpectedSequences(0.259, 8, 201086)
	if err != nil {
		t.Fatal(err)
	}
	if e < 3.5 || e > 4.5 {
		t.Fatalf("ethermine expected 8-seq/month ~4, got %v", e)
	}
	// Sparkpool 9-sequence: 0.2269^9 * 201,086 ≈ 0.3 per month.
	e, err = ExpectedSequences(0.2269, 9, 201086)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0.25 || e > 0.35 {
		t.Fatalf("sparkpool expected 9-seq/month ~0.3, got %v", e)
	}
}

func TestMonthsUntilSequence(t *testing.T) {
	// Sparkpool: ~1/0.3 ≈ 3+ months for one 9-sequence.
	m, err := MonthsUntilSequence(0.2269, 9, 201086)
	if err != nil {
		t.Fatal(err)
	}
	if m < 2.8 || m > 4.0 {
		t.Fatalf("sparkpool months until 9-seq ~3, got %v", m)
	}
	inf, err := MonthsUntilSequence(0, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Fatalf("zero share should never sequence, got %v", inf)
	}
}

func TestSequenceProbabilityErrors(t *testing.T) {
	if _, err := SequenceProbability(-0.1, 2); err == nil {
		t.Error("negative share: want error")
	}
	if _, err := SequenceProbability(1.1, 2); err == nil {
		t.Error("share >1: want error")
	}
	if _, err := SequenceProbability(0.5, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := ExpectedSequences(0.5, 2, -1); err == nil {
		t.Error("negative chain: want error")
	}
}

func TestRunLengths(t *testing.T) {
	got := RunLengths([]string{"a", "a", "b", "a", "c", "c", "c"})
	want := map[string][]int{
		"a": {2, 1},
		"b": {1},
		"c": {3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("want %v, got %v", want, got)
	}
}

func TestRunLengthsEmpty(t *testing.T) {
	if got := RunLengths(nil); len(got) != 0 {
		t.Fatalf("want empty map, got %v", got)
	}
}

func TestRunLengthsSingle(t *testing.T) {
	got := RunLengths([]string{"x"})
	if !reflect.DeepEqual(got, map[string][]int{"x": {1}}) {
		t.Fatalf("got %v", got)
	}
}

func TestRunLengthsSumProperty(t *testing.T) {
	// The run lengths of any label sequence must sum to its length.
	f := func(raw []uint8) bool {
		labels := make([]string, len(raw))
		for i, r := range raw {
			labels[i] = string(rune('a' + r%3))
		}
		runs := RunLengths(labels)
		sum := 0
		for _, rs := range runs {
			for _, r := range rs {
				sum += r
			}
		}
		return sum == len(labels)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxRunAndCount(t *testing.T) {
	runs := []int{1, 5, 3, 5, 2}
	if MaxRun(runs) != 5 {
		t.Errorf("max: got %d", MaxRun(runs))
	}
	if MaxRun(nil) != 0 {
		t.Errorf("empty max: got %d", MaxRun(nil))
	}
	if CountRunsAtLeast(runs, 3) != 3 {
		t.Errorf("count>=3: got %d", CountRunsAtLeast(runs, 3))
	}
	if CountRunsAtLeast(runs, 6) != 0 {
		t.Errorf("count>=6: got %d", CountRunsAtLeast(runs, 6))
	}
}
