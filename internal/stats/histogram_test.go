package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := NewHistogram(10, 10, 4); err == nil {
		t.Error("empty range: want error")
	}
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("inverted range: want error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 5, 9.99, 10, 95, 99.9})
	if h.Total() != 6 {
		t.Fatalf("total: want 6, got %d", h.Total())
	}
	if h.Count(0) != 3 {
		t.Errorf("bin0: want 3, got %d", h.Count(0))
	}
	if h.Count(1) != 1 {
		t.Errorf("bin1: want 1, got %d", h.Count(1))
	}
	if h.Count(9) != 2 {
		t.Errorf("bin9: want 2, got %d", h.Count(9))
	}
}

func TestHistogramClamping(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-5)  // below range -> first bin
	h.Add(10)  // at max -> last bin
	h.Add(999) // above range -> last bin
	if h.Count(0) != 1 {
		t.Errorf("bin0: want 1, got %d", h.Count(0))
	}
	if h.Count(1) != 2 {
		t.Errorf("bin1: want 2, got %d", h.Count(1))
	}
	if h.Underflow() != 1 {
		t.Errorf("underflow: want 1, got %d", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow: want 2, got %d", h.Overflow())
	}
}

// Regression: NaN used to ride int(math.Floor(NaN)) into the first
// bin, silently inflating the low tail. It must stay out of the bins
// and the total, and be visible through the NaNs accessor.
func TestHistogramNaN(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{math.NaN(), 1, math.NaN(), 8})
	if h.Total() != 2 {
		t.Fatalf("total: want 2 (NaN excluded), got %d", h.Total())
	}
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Errorf("bins: want [1 1], got [%d %d]", h.Count(0), h.Count(1))
	}
	if h.NaNs() != 2 {
		t.Errorf("nans: want 2, got %d", h.NaNs())
	}
	if h.Underflow() != 0 || h.Overflow() != 0 {
		t.Errorf("NaN must not count as underflow/overflow: %d/%d", h.Underflow(), h.Overflow())
	}
	if d := h.Density(0) + h.Density(1); d != 1 {
		t.Errorf("density sum with NaNs present: want 1, got %v", d)
	}
}

// Regression: infinities are not NaN — they clamp into the edge bins
// like any other out-of-range sample, tallied as under/overflow.
func TestHistogramInfClamping(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.Inf(-1))
	h.Add(math.Inf(1))
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Errorf("bins: want [1 1], got [%d %d]", h.Count(0), h.Count(1))
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/overflow: want 1/1, got %d/%d", h.Underflow(), h.Overflow())
	}
	if h.NaNs() != 0 {
		t.Errorf("nans: want 0, got %d", h.NaNs())
	}
}

// In-range samples must never touch the outlier counters, and the
// render of a purely in-range histogram is unchanged by the fix.
func TestHistogramInRangeAccessorsZero(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 5, 50, 99.999})
	if h.NaNs() != 0 || h.Underflow() != 0 || h.Overflow() != 0 {
		t.Errorf("in-range samples tripped outlier counters: nan=%d under=%d over=%d",
			h.NaNs(), h.Underflow(), h.Overflow())
	}
}

func TestHistogramDensitySumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-100, 100, 17)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		if n == 0 {
			return h.Total() == 0
		}
		sum := 0.0
		for _, d := range h.Densities() {
			sum += d
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinEdges(t *testing.T) {
	h, err := NewHistogram(0, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 50 {
		t.Fatalf("bins: want 50, got %d", h.Bins())
	}
	if h.BinStart(0) != 0 || !almostEqual(h.BinStart(50), 500, 1e-9) {
		t.Errorf("edges: %v..%v", h.BinStart(0), h.BinStart(50))
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{1, 1, 8})
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("render missing bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", lines, out)
	}
	// Width <1 falls back to a default without panicking.
	if empty := h.Render(0); empty == "" {
		t.Fatal("render with width 0 should fall back")
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.P(0) != 0 {
		t.Error("empty ECDF P should be 0")
	}
	if _, err := e.Value(0.5); err != ErrNoSamples {
		t.Errorf("want ErrNoSamples, got %v", err)
	}
}

func TestECDFKnown(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P(%v): want %v, got %v", c.x, c.want, got)
		}
	}
	v, err := e.Value(0.5)
	if err != nil || v != 2 {
		t.Errorf("Value(0.5): got %v, %v", v, err)
	}
	v, err = e.Value(1)
	if err != nil || v != 4 {
		t.Errorf("Value(1): got %v, %v", v, err)
	}
	if _, err := e.Value(0); err == nil {
		t.Error("Value(0): want error")
	}
	if _, err := e.Value(1.5); err == nil {
		t.Error("Value(1.5): want error")
	}
}

func TestECDFSeries(t *testing.T) {
	e := NewECDF([]float64{10, 20})
	got := e.Series([]float64{5, 10, 20})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("series[%d]: want %v, got %v", i, want[i], got[i])
		}
	}
}

func TestECDFRoundTripProperty(t *testing.T) {
	// For any sample x in the set, Value(P(x)) <= x must hold: the
	// smallest value reaching x's cumulative probability cannot
	// exceed x itself.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		for _, x := range xs {
			p := e.P(x)
			v, err := e.Value(p)
			if err != nil || v > x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
