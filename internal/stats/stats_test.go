package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoSamples {
		t.Fatalf("want ErrNoSamples, got %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 1 || s.Mean != 42 || s.Median != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("single-sample stddev should be 0, got %v", s.StdDev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("mean: want 5, got %v", s.Mean)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("median: want 4.5, got %v", s.Median)
	}
	// Sample stddev of the classic example set is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev: want %v, got %v", math.Sqrt(32.0/7.0), s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max: got %v/%v", s.Min, s.Max)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25},
		{1.0 / 3.0, 20},
		{0.25, 17.5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("q=%v: %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("q=%v: want %v, got %v", c.q, c.want, got)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrNoSamples {
		t.Errorf("empty: want ErrNoSamples, got %v", err)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1}, q); err == nil {
			t.Errorf("q=%v: want error", q)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMeanMedian(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoSamples {
		t.Errorf("mean empty: %v", err)
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("mean: got %v, %v", m, err)
	}
	med, err := Median([]float64{1, 3, 2})
	if err != nil || med != 2 {
		t.Errorf("median: got %v, %v", med, err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err1 := Quantile(xs, qa)
		vb, err2 := Quantile(xs, qb)
		if err1 != nil || err2 != nil {
			return false
		}
		return va <= vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qq := math.Abs(math.Mod(q, 1))
		v, err := Quantile(xs, qq)
		if err != nil {
			return false
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return v >= s.Min && v <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}
