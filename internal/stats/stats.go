// Package stats provides the numerical kit used by the analysis
// pipeline: summary statistics, quantiles, histograms, empirical CDFs
// and the sequence-probability helpers used by the paper's security
// analysis (§III-D).
//
// The package replaces the pandas/NumPy layer of the original study
// with pure-Go equivalents. All functions operate on float64 samples
// and are deterministic.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by computations that require at least one
// sample.
var ErrNoSamples = errors.New("stats: no samples")

// Summary holds the descriptive statistics of a sample set.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
	P90    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary over xs. It returns ErrNoSamples when xs
// is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoSamples
	}
	sorted := sortedCopy(xs)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, x := range sorted {
		d := x - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		StdDev: std,
		P90:    quantileSorted(sorted, 0.90),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}, nil
}

// String renders the summary in a compact single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p90=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.Median, s.P90, s.P95, s.P99, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns ErrNoSamples when xs
// is empty and an error when q is outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	return quantileSorted(sortedCopy(xs), q), nil
}

// Mean returns the arithmetic mean of xs, or ErrNoSamples.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoSamples
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

func sortedCopy(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted
}

// quantileSorted computes the q-quantile assuming xs is sorted and
// non-empty, using the "linear interpolation of the empirical CDF"
// convention (NumPy's default), matching the paper's tooling.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}
