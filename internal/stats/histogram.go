package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram over a half-open range
// [Min, Max). Finite samples below Min are clamped into the first bin
// and samples at or above Max into the last bin, so a histogram never
// drops data (the paper's Fig. 1 x-axis is truncated at 500 ms the
// same way) — but the clamping is no longer silent: Underflow and
// Overflow report how many samples were folded into the edge bins.
// NaN samples are excluded from the bins and the total entirely
// (int(math.Floor(NaN)) used to dump them into the first bin, which
// quietly skewed the low tail) and are reported by NaNs.
type Histogram struct {
	min    float64
	max    float64
	width  float64
	counts []int
	total  int
	nans   int
	under  int
	over   int
}

// NewHistogram creates a histogram with n equal-width bins covering
// [min, max). It returns an error when the range is empty or n < 1.
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", n)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", min, max)
	}
	return &Histogram{
		min:    min,
		max:    max,
		width:  (max - min) / float64(n),
		counts: make([]int, n),
	}, nil
}

// Add records one sample. NaN is counted separately and never enters
// a bin; finite out-of-range samples clamp into the edge bins as
// before, with the fold tallied in Underflow/Overflow.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nans++
		return
	}
	var idx int
	switch {
	case x < h.min:
		// Clamp directly: converting the float quotient would already
		// be negative here, and for -Inf the conversion is undefined.
		h.under++
		idx = 0
	case x >= h.max:
		// Likewise: int(+Inf) is architecture-defined (minimum int on
		// amd64), which used to drop +Inf into the FIRST bin.
		h.over++
		idx = len(h.counts) - 1
	default:
		idx = int(math.Floor((x - h.min) / h.width))
		// Guard float rounding at the edges of an in-range sample.
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
	}
	h.counts[idx]++
	h.total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of binned samples (NaN inputs excluded).
func (h *Histogram) Total() int { return h.total }

// NaNs returns the number of NaN samples rejected by Add.
func (h *Histogram) NaNs() int { return h.nans }

// Underflow returns the number of samples below Min that were clamped
// into the first bin.
func (h *Histogram) Underflow() int { return h.under }

// Overflow returns the number of samples at or above Max that were
// clamped into the last bin.
func (h *Histogram) Overflow() int { return h.over }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the raw count of bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return h.min + float64(i)*h.width }

// Density returns the probability mass of bin i (count/total), or 0
// when the histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Densities returns the probability mass of every bin.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.counts))
	for i := range h.counts {
		out[i] = h.Density(i)
	}
	return out
}

// Render draws a textual histogram (one row per bin) sized to width
// characters, matching the presentation style of the paper's Fig. 1.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxDensity := 0.0
	for i := range h.counts {
		if d := h.Density(i); d > maxDensity {
			maxDensity = d
		}
	}
	var b strings.Builder
	for i := range h.counts {
		d := h.Density(i)
		bar := 0
		if maxDensity > 0 {
			bar = int(math.Round(d / maxDensity * float64(width)))
		}
		fmt.Fprintf(&b, "%8.1f-%-8.1f %6.2f%% %s\n",
			h.BinStart(i), h.BinStart(i+1), d*100, strings.Repeat("#", bar))
	}
	return b.String()
}

// ECDF is an empirical cumulative distribution function built from a
// sample set. It answers both directions: P(X <= x) and the
// x-value at a given cumulative probability.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. The input slice is copied.
func NewECDF(xs []float64) *ECDF {
	return &ECDF{sorted: sortedCopy(xs)}
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// P returns the empirical P(X <= x), i.e. the fraction of samples not
// exceeding x. It returns 0 for an empty ECDF.
func (e *ECDF) P(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Value returns the smallest sample x such that P(X <= x) >= q. It
// returns ErrNoSamples for an empty ECDF and an error for q outside
// (0, 1].
func (e *ECDF) Value(q float64) (float64, error) {
	if len(e.sorted) == 0 {
		return 0, ErrNoSamples
	}
	if q <= 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: ecdf quantile %v outside (0,1]", q)
	}
	n := len(e.sorted)
	// Find the smallest index whose cumulative probability (i+1)/n
	// reaches q. Recomputing the division keeps Value(P(x)) <= x exact
	// even when q itself came from P.
	idx := sort.Search(n, func(i int) bool {
		return float64(i+1)/float64(n) >= q
	})
	if idx >= n {
		idx = n - 1
	}
	return e.sorted[idx], nil
}

// Series samples the CDF at the given x positions, returning the
// cumulative probability for each. Useful for rendering figure series.
func (e *ECDF) Series(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.P(x)
	}
	return out
}
