package stats

import "math"

// Accumulator computes running mean, variance and extrema over a
// stream of samples without retaining them (Welford's algorithm). It
// backs the experiment runner's cross-repeat aggregation, where
// outcomes arrive one at a time from concurrent workers.
//
// The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running arithmetic mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the sample standard deviation (n-1 denominator,
// matching Summarize); 0 with fewer than two samples.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest sample (0 with no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a *Accumulator) Max() float64 { return a.max }
