package stats

import (
	"math"
	"testing"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	want, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N() != want.Count {
		t.Fatalf("n: %d vs %d", acc.N(), want.Count)
	}
	if math.Abs(acc.Mean()-want.Mean) > 1e-12 {
		t.Fatalf("mean: %v vs %v", acc.Mean(), want.Mean)
	}
	if math.Abs(acc.StdDev()-want.StdDev) > 1e-12 {
		t.Fatalf("std: %v vs %v", acc.StdDev(), want.StdDev)
	}
	if acc.Min() != want.Min || acc.Max() != want.Max {
		t.Fatalf("extrema: [%v, %v] vs [%v, %v]", acc.Min(), acc.Max(), want.Min, want.Max)
	}
}

func TestAccumulatorEdgeCases(t *testing.T) {
	var empty Accumulator
	if empty.N() != 0 || empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Fatal("zero value must report zeros")
	}
	var one Accumulator
	one.Add(-2.5)
	if one.Mean() != -2.5 || one.StdDev() != 0 || one.Min() != -2.5 || one.Max() != -2.5 {
		t.Fatalf("single sample: %+v", one)
	}
}
