// Package store is the artifact layer under every campaign run
// directory: a small keyed blob store (Put/Get/List/Delete) plus a
// Merkle-batched manifest that gives each run a single root digest
// verifiable offline. Two backends ship — a filesystem store that
// preserves the historical paper_runs/<dir> layout byte for byte, and
// an in-memory store for tests and ephemeral server campaigns — and a
// conformance suite (store_test.go) pins both to the same contract.
//
// Names are slash-separated relative paths ("csv/outcomes.csv").
// Every Put fully replaces the named blob; stores never interpret
// contents except when building or verifying a manifest.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"strings"
)

// ManifestFile is the reserved manifest name inside every store. It
// records the digests of all other blobs, so it is excluded from the
// manifest it anchors.
const ManifestFile = "manifest.json"

// SchemaVersion is the current manifest schema. Version 1 directories
// (written before digests existed) carry no schema_version field and
// read back as version 0.
const SchemaVersion = 2

// Store is a keyed artifact store. Implementations must be safe for
// concurrent use.
type Store interface {
	// Put writes data under name, replacing any previous blob.
	Put(name string, data []byte) error
	// Get returns the blob stored under name. A missing name returns
	// an error satisfying errors.Is(err, fs.ErrNotExist).
	Get(name string) ([]byte, error)
	// List returns every stored name in sorted order.
	List() ([]string, error)
	// Delete removes name. Deleting a missing name is a no-op.
	Delete(name string) error
	// Manifest digests the current contents (ManifestFile excluded)
	// into a Merkle-batched manifest.
	Manifest() (*Manifest, error)
}

// CleanName validates and normalizes a store name: slash-separated,
// relative, no traversal outside the store.
func CleanName(name string) (string, error) {
	if name == "" {
		return "", errors.New("store: empty name")
	}
	if strings.Contains(name, "\\") {
		return "", fmt.Errorf("store: name %q must use forward slashes", name)
	}
	cleaned := path.Clean(name)
	if path.IsAbs(cleaned) || cleaned == ".." || strings.HasPrefix(cleaned, "../") || cleaned == "." {
		return "", fmt.Errorf("store: name %q escapes the store", name)
	}
	return cleaned, nil
}

// notExist wraps a missing-name error so errors.Is(err, fs.ErrNotExist)
// holds across backends.
func notExist(name string) error {
	return fmt.Errorf("store: %s: %w", name, fs.ErrNotExist)
}
