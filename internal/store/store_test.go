package store

import (
	"encoding/json"
	"errors"
	"io/fs"
	"path/filepath"
	"testing"
)

// backends enumerates every Store implementation; the conformance
// suite below runs each subtest against all of them, so the two
// backends cannot drift apart behaviorally.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	return map[string]Store{
		"fs":  NewFS(filepath.Join(t.TempDir(), "run")),
		"mem": NewMem(),
	}
}

func put(t *testing.T, s Store, name, data string) {
	t.Helper()
	if err := s.Put(name, []byte(data)); err != nil {
		t.Fatalf("put %s: %v", name, err)
	}
}

func TestConformancePutGetListDelete(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if names, err := s.List(); err != nil || len(names) != 0 {
				t.Fatalf("fresh store should list empty, got %v, %v", names, err)
			}
			put(t, s, "rendered.txt", "hello")
			put(t, s, "csv/outcomes.csv", "a,b\n")
			put(t, s, "csv/summary.csv", "c,d\n")

			got, err := s.Get("csv/outcomes.csv")
			if err != nil || string(got) != "a,b\n" {
				t.Fatalf("get: %q, %v", got, err)
			}
			// Returned buffers must not alias store internals.
			got[0] = 'X'
			if again, _ := s.Get("csv/outcomes.csv"); string(again) != "a,b\n" {
				t.Fatalf("store buffer aliased: %q", again)
			}

			names, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"csv/outcomes.csv", "csv/summary.csv", "rendered.txt"}
			if len(names) != len(want) {
				t.Fatalf("list: %v, want %v", names, want)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("list[%d] = %s, want %s", i, names[i], want[i])
				}
			}

			// Put replaces.
			put(t, s, "rendered.txt", "replaced")
			if data, _ := s.Get("rendered.txt"); string(data) != "replaced" {
				t.Fatalf("put did not replace: %q", data)
			}

			if err := s.Delete("csv/summary.csv"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("csv/summary.csv"); err != nil {
				t.Fatalf("deleting a missing name must be a no-op: %v", err)
			}
			if _, err := s.Get("csv/summary.csv"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("get after delete: %v, want fs.ErrNotExist", err)
			}
		})
	}
}

func TestConformanceNameValidation(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []string{"", "..", "../evil", "/abs", "a/../../b", `win\slash`} {
				if err := s.Put(bad, []byte("x")); err == nil {
					t.Errorf("Put(%q) accepted", bad)
				}
				if _, err := s.Get(bad); err == nil {
					t.Errorf("Get(%q) accepted", bad)
				}
			}
			// Redundant but harmless names normalize.
			put(t, s, "./csv/x.csv", "1")
			if _, err := s.Get("csv/x.csv"); err != nil {
				t.Errorf("normalized name not found: %v", err)
			}
		})
	}
}

func TestConformanceManifest(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			put(t, s, "b.txt", "bravo")
			put(t, s, "a.txt", "alpha")
			put(t, s, "csv/c.csv", "1,2\n")
			m1, err := s.Manifest()
			if err != nil {
				t.Fatal(err)
			}
			if m1.SchemaVersion != SchemaVersion {
				t.Fatalf("schema version %d, want %d", m1.SchemaVersion, SchemaVersion)
			}
			if len(m1.Files) != 3 {
				t.Fatalf("manifest files: %+v", m1.Files)
			}
			for i := 1; i < len(m1.Files); i++ {
				if m1.Files[i-1].Path >= m1.Files[i].Path {
					t.Fatalf("manifest files unsorted: %+v", m1.Files)
				}
			}

			// The manifest blob itself never digests into the manifest.
			doc, _ := json.Marshal(m1)
			put(t, s, ManifestFile, string(doc))
			m2, err := s.Manifest()
			if err != nil {
				t.Fatal(err)
			}
			if m2.MerkleRoot != m1.MerkleRoot {
				t.Fatalf("manifest self-inclusion changed root: %s vs %s", m2.MerkleRoot, m1.MerkleRoot)
			}

			// A one-byte edit moves both the file digest and the root.
			put(t, s, "a.txt", "alphA")
			m3, err := s.Manifest()
			if err != nil {
				t.Fatal(err)
			}
			if m3.MerkleRoot == m1.MerkleRoot {
				t.Fatal("root unchanged after content edit")
			}
		})
	}
}

// TestManifestRootsIdenticalAcrossBackends pins both backends (and
// any put order) to the same digests for the same logical contents.
func TestManifestRootsIdenticalAcrossBackends(t *testing.T) {
	content := map[string]string{
		"manifest-meta.txt": "m",
		"csv/outcomes.csv":  "spec,metric\n",
		"outcomes.json":     `{"seed":1}`,
	}
	var roots []string
	for name, s := range backends(t) {
		for n, d := range content { // map order varies — roots must not
			put(t, s, n, d)
		}
		m, err := s.Manifest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		roots = append(roots, m.MerkleRoot)
	}
	for i := 1; i < len(roots); i++ {
		if roots[i] != roots[0] {
			t.Fatalf("backends disagree on root: %v", roots)
		}
	}
}

func TestMerkleRootProperties(t *testing.T) {
	files := []File{
		{Path: "a", Size: 1, SHA256: "aa"},
		{Path: "b", Size: 1, SHA256: "bb"},
		{Path: "c", Size: 1, SHA256: "cc"},
	}
	root := MerkleRoot(files)
	// Order-insensitive (sorted internally).
	if MerkleRoot([]File{files[2], files[0], files[1]}) != root {
		t.Fatal("root depends on input order")
	}
	// Renames are tamper-evident even with unchanged content digests.
	renamed := []File{files[0], files[1], {Path: "c2", Size: 1, SHA256: "cc"}}
	if MerkleRoot(renamed) == root {
		t.Fatal("rename did not change root")
	}
	if MerkleRoot(nil) != MerkleRoot([]File{}) {
		t.Fatal("empty roots differ")
	}
	if MerkleRoot(nil) == root {
		t.Fatal("empty root collides")
	}
}

func writeManifest(t *testing.T, s Store) {
	t.Helper()
	m, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ManifestFile, doc); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			put(t, s, "outcomes.json", `{"seed":42}`)
			put(t, s, "csv/outcomes.csv", "spec,metric,value\n")
			writeManifest(t, s)
			if err := Verify(s); err != nil {
				t.Fatalf("clean store failed verify: %v", err)
			}

			// Content edit.
			put(t, s, "outcomes.json", `{"seed":43}`)
			if err := Verify(s); err == nil {
				t.Fatal("verify missed a content edit")
			}
			put(t, s, "outcomes.json", `{"seed":42}`)

			// Unlisted extra file.
			put(t, s, "smuggled.txt", "x")
			if err := Verify(s); err == nil {
				t.Fatal("verify missed an extra file")
			}
			if err := s.Delete("smuggled.txt"); err != nil {
				t.Fatal(err)
			}

			// Missing file.
			if err := s.Delete("csv/outcomes.csv"); err != nil {
				t.Fatal(err)
			}
			if err := Verify(s); err == nil {
				t.Fatal("verify missed a missing file")
			}
			put(t, s, "csv/outcomes.csv", "spec,metric,value\n")

			// Forged root.
			m, err := ReadManifest(s)
			if err != nil {
				t.Fatal(err)
			}
			m.MerkleRoot = "deadbeef"
			doc, _ := json.Marshal(m)
			put(t, s, ManifestFile, string(doc))
			if err := Verify(s); err == nil {
				t.Fatal("verify missed a forged root")
			}

			writeManifest(t, s)
			if err := Verify(s); err != nil {
				t.Fatalf("restored store failed verify: %v", err)
			}
		})
	}
}

func TestVerifyLegacyManifest(t *testing.T) {
	s := NewMem()
	put(t, s, "outcomes.json", "{}")
	// A v1 manifest: campaign metadata only, no digests.
	put(t, s, ManifestFile, `{"seed":42,"scale":"small","repeats":1,"specs":["T1"]}`)
	if err := Verify(s); !errors.Is(err, ErrLegacyManifest) {
		t.Fatalf("verify on legacy manifest: %v, want ErrLegacyManifest", err)
	}
	if _, err := ReadManifest(s); !errors.Is(err, ErrLegacyManifest) {
		t.Fatalf("read on legacy manifest: %v, want ErrLegacyManifest", err)
	}
	if _, err := ReadManifest(NewMem()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read on empty store: %v, want fs.ErrNotExist", err)
	}
}

func TestIsSubPath(t *testing.T) {
	cases := []struct {
		prefix, name string
		want         bool
	}{
		{"", "anything", true},
		{"csv", "csv/outcomes.csv", true},
		{"csv", "csv", true},
		{"csv", "csvx", false},
		{"csv/outcomes.csv", "csv", false},
	}
	for _, c := range cases {
		if got := IsSubPath(c.prefix, c.name); got != c.want {
			t.Errorf("IsSubPath(%q, %q) = %v, want %v", c.prefix, c.name, got, c.want)
		}
	}
}
