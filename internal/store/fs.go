package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS is the filesystem backend: blobs are plain files under a root
// directory, so a campaign written through FS is byte-identical to
// the historical bare-directory layout (manifest.json, outcomes.json,
// rendered.txt, csv/*) and remains directly greppable/diffable.
type FS struct {
	root string
}

// NewFS returns a filesystem store rooted at dir. The directory is
// created lazily on first Put, so opening a store for reading never
// litters the filesystem.
func NewFS(dir string) *FS { return &FS{root: dir} }

// Root returns the backing directory.
func (f *FS) Root() string { return f.root }

func (f *FS) path(name string) (string, error) {
	cleaned, err := CleanName(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(f.root, filepath.FromSlash(cleaned)), nil
}

// Put writes data to root/name (0o644), creating parent directories
// as needed.
func (f *FS) Put(name string, data []byte) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", name, err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("store: put %s: %w", name, err)
	}
	return nil
}

// Get reads root/name.
func (f *FS) Get(name string) ([]byte, error) {
	p, err := f.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, notExist(name)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", name, err)
	}
	return data, nil
}

// List walks the root and returns every file as a sorted
// slash-separated relative path. A store whose root does not exist
// yet lists as empty.
func (f *FS) List() ([]string, error) {
	var names []string
	err := filepath.WalkDir(f.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(f.root, p)
		if err != nil {
			return err
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", f.root, err)
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes root/name; missing names are a no-op. Emptied parent
// directories are left in place (the layout is append-mostly and a
// stable tree is easier to reason about).
func (f *FS) Delete(name string) error {
	p, err := f.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete %s: %w", name, err)
	}
	return nil
}

// Manifest digests the directory's current contents.
func (f *FS) Manifest() (*Manifest, error) { return buildManifest(f) }

// ensure FS cannot silently drift from the interface.
var _ Store = (*FS)(nil)

// IsSubPath reports whether name is under prefix in slash-path terms
// ("csv" covers "csv/outcomes.csv" but not "csvx"). Shared by servers
// that map URL sub-trees onto store names.
func IsSubPath(prefix, name string) bool {
	return prefix == "" || name == prefix || strings.HasPrefix(name, prefix+"/")
}
