package store

import (
	"sort"
	"sync"
)

// Mem is the in-memory backend: a mutex-guarded map, used by tests
// and by ephemeral server campaigns that never touch disk. Blobs are
// copied on both Put and Get so callers can never alias the store's
// internal buffers.
type Mem struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{blobs: map[string][]byte{}} }

// Put stores a copy of data under name.
func (m *Mem) Put(name string, data []byte) error {
	cleaned, err := CleanName(name)
	if err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.blobs[cleaned] = cp
	m.mu.Unlock()
	return nil
}

// Get returns a copy of the blob stored under name.
func (m *Mem) Get(name string) ([]byte, error) {
	cleaned, err := CleanName(name)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	data, ok := m.blobs[cleaned]
	m.mu.RUnlock()
	if !ok {
		return nil, notExist(name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// List returns every stored name, sorted.
func (m *Mem) List() ([]string, error) {
	m.mu.RLock()
	names := make([]string, 0, len(m.blobs))
	for name := range m.blobs {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Delete removes name; missing names are a no-op.
func (m *Mem) Delete(name string) error {
	cleaned, err := CleanName(name)
	if err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.blobs, cleaned)
	m.mu.Unlock()
	return nil
}

// Manifest digests the store's current contents.
func (m *Mem) Manifest() (*Manifest, error) { return buildManifest(m) }

var _ Store = (*Mem)(nil)
