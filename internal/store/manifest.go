package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// File is one manifest entry: a stored blob's path, size and content
// digest.
type File struct {
	Path   string `json:"path"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Manifest is the digest record anchoring a store's contents: the
// per-file SHA-256 digests plus the Merkle root batching them. Writers
// embed it in ManifestFile next to their own metadata (campaign seed,
// dataset sizing, ...); Verify ignores any extra fields, so every
// store kind shares one verification path.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	MerkleRoot    string `json:"merkle_root"`
	Files         []File `json:"files"`
}

// Merkle domain-separation prefixes: leaves and interior nodes hash
// into disjoint input spaces so a crafted file cannot impersonate a
// subtree.
const (
	leafPrefix = byte(0x00)
	nodePrefix = byte(0x01)
)

// leafHash digests one manifest entry: the path binds the digest to
// its location, so renames are tamper-evident, not just edits.
func leafHash(f File) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write([]byte(f.Path))
	h.Write([]byte{0})
	sum, _ := hex.DecodeString(f.SHA256)
	h.Write(sum)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// MerkleRoot batches the entries (sorted by path) into a binary Merkle
// tree and returns the hex root. Levels pair left-to-right; an odd
// trailing node is promoted unchanged — safe here because leaf and
// interior hashes live in separate domains. An empty file set hashes
// to the leaf-domain digest of nothing.
func MerkleRoot(files []File) string {
	sorted := make([]File, len(files))
	copy(sorted, files)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	level := make([][sha256.Size]byte, 0, len(sorted))
	for _, f := range sorted {
		level = append(level, leafHash(f))
	}
	if len(level) == 0 {
		return emptyRoot()
	}
	for len(level) > 1 {
		next := make([][sha256.Size]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write([]byte{nodePrefix})
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var n [sha256.Size]byte
			copy(n[:], h.Sum(nil))
			next = append(next, n)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return hex.EncodeToString(level[0][:])
}

// emptyRoot is the root of a fileless store: the leaf-domain hash of
// no entries.
func emptyRoot() string {
	sum := sha256.Sum256([]byte{leafPrefix})
	return hex.EncodeToString(sum[:])
}

// buildManifest digests every blob in s except ManifestFile — the
// shared implementation behind each backend's Manifest method.
func buildManifest(s Store) (*Manifest, error) {
	names, err := s.List()
	if err != nil {
		return nil, err
	}
	m := &Manifest{SchemaVersion: SchemaVersion}
	for _, name := range names {
		if name == ManifestFile {
			continue
		}
		data, err := s.Get(name)
		if err != nil {
			return nil, fmt.Errorf("store: manifest: %w", err)
		}
		sum := sha256.Sum256(data)
		m.Files = append(m.Files, File{
			Path:   name,
			Size:   int64(len(data)),
			SHA256: hex.EncodeToString(sum[:]),
		})
	}
	m.MerkleRoot = MerkleRoot(m.Files)
	return m, nil
}

// ErrLegacyManifest reports a version-1 manifest (written before
// digests existed): readable, but not verifiable.
var ErrLegacyManifest = errors.New("store: unversioned legacy manifest (schema_version < 2): no digests to verify")

// ReadManifest loads and parses ManifestFile from s. Extra fields
// (campaign or dataset metadata) are ignored. A legacy manifest
// returns the parsed (digestless) manifest alongside
// ErrLegacyManifest so callers can still report its metadata.
func ReadManifest(s Store) (*Manifest, error) {
	data, err := s.Get(ManifestFile)
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parse %s: %w", ManifestFile, err)
	}
	if m.SchemaVersion < SchemaVersion {
		return &m, ErrLegacyManifest
	}
	return &m, nil
}

// Verify checks a store against its embedded manifest: every listed
// file must exist with the recorded size and SHA-256, no unlisted
// blobs may be present (ManifestFile aside), and the recomputed
// Merkle root must match the recorded one. Any mismatch is reported
// as an error naming the offending path.
func Verify(s Store) error {
	m, err := ReadManifest(s)
	if err != nil {
		return err
	}
	names, err := s.List()
	if err != nil {
		return err
	}
	listed := make(map[string]File, len(m.Files))
	for _, f := range m.Files {
		listed[f.Path] = f
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if name == ManifestFile {
			continue
		}
		seen[name] = true
		want, ok := listed[name]
		if !ok {
			return fmt.Errorf("store: verify: %s present but not in manifest", name)
		}
		data, err := s.Get(name)
		if err != nil {
			return fmt.Errorf("store: verify: %w", err)
		}
		if int64(len(data)) != want.Size {
			return fmt.Errorf("store: verify: %s is %d bytes, manifest records %d", name, len(data), want.Size)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want.SHA256 {
			return fmt.Errorf("store: verify: %s digest mismatch: %s != manifest %s", name, got, want.SHA256)
		}
	}
	for _, f := range m.Files {
		if !seen[f.Path] {
			return fmt.Errorf("store: verify: %s in manifest but missing from store", f.Path)
		}
	}
	if got := MerkleRoot(m.Files); got != m.MerkleRoot {
		return fmt.Errorf("store: verify: merkle root mismatch: recomputed %s, manifest records %s", got, m.MerkleRoot)
	}
	return nil
}
