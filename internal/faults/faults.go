// Package faults injects dependability events into running campaigns:
// node crash/recover cycles with discovery-driven peer-table rewiring,
// region-level network partitions that heal, per-link message loss and
// latency degradation layered over the geographic model, and
// continuous peer churn (nodes joining and leaving the overlay).
//
// The source paper measures Ethereum's overlay only while healthy;
// this package opens the degraded-network scenario families (specs
// D1-D3, scenario files with a "faults" block). Every fault schedule
// derives from a dedicated fork of the campaign seed, so faulted
// campaigns inherit the repository's determinism contract unchanged:
// byte-identical artifacts at any -parallel setting.
package faults

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/sim"
)

// Fault errors, returned by the link filter and surfaced through
// p2p's MessagesDropped accounting.
var (
	// ErrPartitioned reports a send crossing an active partition.
	ErrPartitioned = errors.New("faults: link crosses an active partition")
	// ErrLinkLoss reports a send dropped by the loss model.
	ErrLinkLoss = errors.New("faults: message lost")
)

// Config describes every fault class a campaign injects. A nil section
// disables that class; at least one must be set.
type Config struct {
	// Crash drives the crash/recover process.
	Crash *Crash
	// Partitions lists region-level splits with fixed start/heal times.
	Partitions []Partition
	// Loss degrades individual links.
	Loss *Loss
	// Churn drives continuous joins and departures.
	Churn *Churn
}

// Crash configures the crash/recover process: at exponential
// intervals a uniformly chosen eligible node goes down, and recovers
// after an exponential outage, redialing peers through discovery.
type Crash struct {
	// MeanBetween is the mean interval between crash events across the
	// whole overlay.
	MeanBetween sim.Time
	// MeanDowntime is the mean outage duration.
	MeanDowntime sim.Time
	// MaxCrashes bounds total crash events (0 = unlimited until the
	// campaign's workload completes).
	MaxCrashes int
}

// Partition is one scheduled region-level split: the listed regions
// form one side, the rest of the world the other. While active, every
// transport send crossing the cut is dropped and inter-pool head
// visibility across it is deferred until the heal.
type Partition struct {
	// Start is when the split begins.
	Start sim.Time
	// Duration is how long it lasts; the partition heals at
	// Start+Duration.
	Duration sim.Time
	// Regions is the isolated side (non-empty, not the whole world).
	Regions []geo.Region
}

// End returns the heal time.
func (p Partition) End() sim.Time { return p.Start + p.Duration }

// Active reports whether the partition is in force at now.
func (p Partition) Active(now sim.Time) bool {
	return now >= p.Start && now < p.End()
}

// isolates reports whether the region is on the partition's listed
// side.
func (p Partition) isolates(r geo.Region) bool {
	for _, pr := range p.Regions {
		if pr == r {
			return true
		}
	}
	return false
}

// Separates reports whether the partition puts the two regions on
// opposite sides of the cut.
func (p Partition) Separates(a, b geo.Region) bool {
	return p.isolates(a) != p.isolates(b)
}

// Loss configures per-link degradation applied to every surviving
// send: an independent drop probability (overlay-level outages, not
// the TCP retransmits geo already models) and an additional
// exponential delay.
type Loss struct {
	// DropProb is the per-message drop probability in [0, 1].
	DropProb float64
	// ExtraDelayMean is the mean of an exponential extra delay added
	// to every delivered message (0 disables).
	ExtraDelayMean sim.Time
}

// Churn configures continuous overlay membership change: at
// exponential intervals a node either joins (a fresh node dials into
// the overlay through discovery) or leaves permanently.
type Churn struct {
	// MeanBetween is the mean interval between churn events.
	MeanBetween sim.Time
	// JoinFraction is the probability an event is a join rather than a
	// leave (nil = 0.5, holding the expected overlay size steady).
	JoinFraction *float64
	// MaxEvents bounds total churn events (0 = unlimited until the
	// campaign's workload completes).
	MaxEvents int
}

// joinFraction resolves the effective join probability.
func (c *Churn) joinFraction() float64 {
	if c.JoinFraction == nil {
		return 0.5
	}
	return *c.JoinFraction
}

// Enabled reports whether any fault class is configured.
func (c *Config) Enabled() bool {
	return c != nil && (c.Crash != nil || len(c.Partitions) > 0 || c.Loss != nil || c.Churn != nil)
}

// Validate checks every schedule invariant the injector relies on.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if !c.Enabled() {
		return errors.New("faults: config enables no fault class")
	}
	if cr := c.Crash; cr != nil {
		if cr.MeanBetween <= 0 {
			return fmt.Errorf("faults: crash mean_between %v must be > 0", cr.MeanBetween)
		}
		if cr.MeanDowntime <= 0 {
			return fmt.Errorf("faults: crash mean_downtime %v must be > 0", cr.MeanDowntime)
		}
		if cr.MaxCrashes < 0 {
			return fmt.Errorf("faults: negative max_crashes %d", cr.MaxCrashes)
		}
	}
	for i, p := range c.Partitions {
		if p.Start < 0 {
			return fmt.Errorf("faults: partition %d starts at negative time %v", i, p.Start)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("faults: partition %d duration %v must be > 0", i, p.Duration)
		}
		if len(p.Regions) == 0 {
			return fmt.Errorf("faults: partition %d isolates no region", i)
		}
		if len(p.Regions) >= geo.NumRegions {
			return fmt.Errorf("faults: partition %d isolates every region (both sides must be non-empty)", i)
		}
		seen := map[geo.Region]bool{}
		for _, r := range p.Regions {
			if !r.Valid() {
				return fmt.Errorf("faults: partition %d lists invalid region %v", i, r)
			}
			if seen[r] {
				return fmt.Errorf("faults: partition %d lists region %s twice", i, r)
			}
			seen[r] = true
		}
	}
	if l := c.Loss; l != nil {
		if l.DropProb < 0 || l.DropProb > 1 {
			return fmt.Errorf("faults: loss drop_prob %v outside [0,1]", l.DropProb)
		}
		if l.ExtraDelayMean < 0 {
			return fmt.Errorf("faults: negative loss extra_delay_mean %v", l.ExtraDelayMean)
		}
		if l.DropProb == 0 && l.ExtraDelayMean == 0 {
			return errors.New("faults: loss section sets neither drop_prob nor extra_delay_mean")
		}
	}
	if ch := c.Churn; ch != nil {
		if ch.MeanBetween <= 0 {
			return fmt.Errorf("faults: churn mean_between %v must be > 0", ch.MeanBetween)
		}
		if jf := ch.joinFraction(); jf < 0 || jf > 1 {
			return fmt.Errorf("faults: churn join_fraction %v outside [0,1]", jf)
		}
		if ch.MaxEvents < 0 {
			return fmt.Errorf("faults: negative churn max_events %d", ch.MaxEvents)
		}
	}
	return nil
}

// separated reports whether any partition active at now separates the
// two regions.
func (c *Config) separated(now sim.Time, a, b geo.Region) bool {
	for _, p := range c.Partitions {
		if p.Active(now) && p.Separates(a, b) {
			return true
		}
	}
	return false
}

// healAfter returns how long from now until every partition currently
// separating the two regions has healed (0 when none does).
func (c *Config) healAfter(now sim.Time, a, b geo.Region) sim.Time {
	var wait sim.Time
	for _, p := range c.Partitions {
		if p.Active(now) && p.Separates(a, b) {
			if d := p.End() - now; d > wait {
				wait = d
			}
		}
	}
	return wait
}

// Stats is the injector's ground-truth event accounting, feeding the
// availability analysis.
type Stats struct {
	// Crashes / Recoveries count crash events and completed recoveries.
	Crashes, Recoveries int
	// Joins / Leaves count churn events.
	Joins, Leaves int
	// DroppedPartition / DroppedLoss count sends vetoed by the link
	// filter, by cause. (Down-endpoint drops are counted by p2p.)
	DroppedPartition, DroppedLoss uint64
	// CrashDowntime is the summed node-outage time (crash outages
	// only; departed nodes are not "unavailable", they are gone).
	CrashDowntime sim.Time
	// PartitionTime is the summed active-partition time within the
	// run's horizon.
	PartitionTime sim.Time
	// DownAtEnd counts nodes still crashed when the run finished.
	DownAtEnd int
}
