package faults

import (
	"errors"
	"strconv"

	"repro/internal/discovery"
	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// Injector drives a Config against a live network. It runs entirely
// on the campaign's event engine: the recurring crash and churn
// processes are cancellable timers (stopped when the workload
// completes, so the run drains), recoveries are one-shot typed events,
// and the partition schedule is consulted statically — a partition
// costs zero queue entries.
//
// Determinism: every random choice draws from the injector's own RNG
// fork, so adding faults never perturbs another subsystem's stream,
// and the fault schedule is a pure function of the campaign seed.
type Injector struct {
	engine *sim.Engine
	rng    *sim.RNG
	net    *p2p.Network
	cfg    Config
	degree int

	// Per-node state lives in dense slices indexed by NodeID-1 — IDs
	// are sequential and never reused, so a slice slot per node beats a
	// map entry; churn joins grow the slices (see slot).
	//
	// protected nodes never crash or leave: measurement vantage points
	// and pool gateways, matching the paper's always-on infrastructure.
	protected []bool
	// eligible is the index-addressed crash/leave candidate pool; pos
	// is each node's index into it (-1 when absent).
	eligible []*p2p.Node
	pos      []int32

	// Discovery substrate for peer-table rewiring: recovered and
	// freshly joined nodes redial through converged Kademlia tables,
	// the way a restarted devp2p client refills its peer set. toDisc
	// is dense (hasDisc marks registered nodes); fromDisc stays a map
	// because discovery IDs are hashes, not dense indices.
	universe *discovery.Universe
	toDisc   []discovery.NodeID
	hasDisc  []bool
	fromDisc map[discovery.NodeID]*p2p.Node

	crashTimer *sim.Timer
	churnTimer *sim.Timer
	stopped    bool

	// downSince is each node's crash start (-1 when up); downCount
	// tracks how many are currently down.
	downSince []sim.Time
	downCount int
	stats     Stats

	// Sharded-transport state (EnableSharding): FilterLink is called
	// concurrently from region lanes during phase B, so the loss model
	// draws from a per-region RNG stream keyed by the sender's region
	// and drop counts accumulate per region, folded into stats at
	// Finalize. Nil/empty when the run is unsharded.
	laneRNG  []*sim.RNG // indexed by geo.Region (slot 0 unused)
	lanePart []uint64
	laneLoss []uint64
}

// slot returns the dense index for id, growing the per-node slices to
// cover it (churn joins allocate fresh IDs past the initial overlay).
func (inj *Injector) slot(id p2p.NodeID) int32 {
	i := int32(id - 1)
	for int(i) >= len(inj.pos) {
		inj.protected = append(inj.protected, false)
		inj.pos = append(inj.pos, -1)
		inj.downSince = append(inj.downSince, -1)
		inj.toDisc = append(inj.toDisc, discovery.NodeID{})
		inj.hasDisc = append(inj.hasDisc, false)
	}
	return i
}

// Typed event opcodes for HandleEvent.
const opRecover uint64 = iota

// rewire attempt budget multiplier (mirrors WireRandom's 20x).
const rewireAttemptFactor = 20

// New validates the configuration and prepares an injector over the
// network's current membership. protected nodes (measurement peers,
// pool gateways) are exempt from crashes and departures. degree is the
// dial-out count for rewired and joining nodes.
func New(engine *sim.Engine, rng *sim.RNG, net *p2p.Network, cfg Config, degree int, protected []*p2p.Node) (*Injector, error) {
	if engine == nil || rng == nil || net == nil {
		return nil, errors.New("faults: nil engine, rng or network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, errors.New("faults: config enables no fault class")
	}
	if degree < 1 {
		degree = 1
	}
	inj := &Injector{
		engine: engine,
		rng:    rng,
		net:    net,
		cfg:    cfg,
		degree: degree,
	}
	for _, n := range protected {
		if n != nil {
			inj.protected[inj.slot(n.ID())] = true
		}
	}
	for i := 0; i < net.Len(); i++ {
		n := net.NodeAt(i)
		s := inj.slot(n.ID())
		if inj.protected[s] {
			continue
		}
		inj.pos[s] = int32(len(inj.eligible))
		inj.eligible = append(inj.eligible, n)
	}
	// The discovery universe is only needed when membership changes
	// (crash rewiring, churn dialing); partition/loss-only campaigns
	// skip the bootstrap cost entirely.
	if cfg.Crash != nil || cfg.Churn != nil {
		if err := inj.buildUniverse(); err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// buildUniverse joins every current overlay node into a discovery
// universe and converges it, in insertion order for determinism.
func (inj *Injector) buildUniverse() error {
	u, err := discovery.NewUniverse(discovery.DefaultBucketSize)
	if err != nil {
		return err
	}
	inj.universe = u
	inj.fromDisc = make(map[discovery.NodeID]*p2p.Node, inj.net.Len())
	for i := 0; i < inj.net.Len(); i++ {
		n := inj.net.NodeAt(i)
		if err := inj.joinUniverse(n); err != nil {
			return err
		}
	}
	return inj.universe.Bootstrap(inj.rng, 3, 1)
}

// joinUniverse registers one node with the discovery substrate.
func (inj *Injector) joinUniverse(n *p2p.Node) error {
	id := discovery.IDFromLabel("fault-node-" + strconv.Itoa(int(n.ID())))
	if err := inj.universe.Join(id); err != nil {
		return err
	}
	s := inj.slot(n.ID())
	inj.toDisc[s] = id
	inj.hasDisc[s] = true
	inj.fromDisc[id] = n
	return nil
}

// Start schedules the recurring fault processes. Partitions need no
// scheduling: the link filter and visibility deferral consult the
// static schedule.
func (inj *Injector) Start() {
	inj.stopped = false
	if c := inj.cfg.Crash; c != nil {
		inj.crashTimer = inj.engine.NewTimer(inj.crashTick)
		inj.crashTimer.Reset(inj.interval(c.MeanBetween))
	}
	if c := inj.cfg.Churn; c != nil {
		inj.churnTimer = inj.engine.NewTimer(inj.churnTick)
		inj.churnTimer.Reset(inj.interval(c.MeanBetween))
	}
}

// Stop cancels the recurring processes (pending recoveries still
// complete, so the engine drains). Called when the campaign's workload
// finishes.
func (inj *Injector) Stop() {
	inj.stopped = true
	if inj.crashTimer != nil {
		inj.crashTimer.Stop()
	}
	if inj.churnTimer != nil {
		inj.churnTimer.Stop()
	}
}

// interval draws the next process interval, floored at one tick so a
// zero exponential draw cannot spin the clock in place.
func (inj *Injector) interval(mean sim.Time) sim.Time {
	d := inj.rng.ExpTime(mean)
	if d < 1 {
		d = 1
	}
	return d
}

// crashTick fires one crash event and reschedules itself.
func (inj *Injector) crashTick(now sim.Time) {
	if inj.stopped {
		return
	}
	c := inj.cfg.Crash
	if c.MaxCrashes > 0 && inj.stats.Crashes >= c.MaxCrashes {
		return
	}
	if len(inj.eligible) > 0 {
		victim := inj.eligible[inj.rng.IntN(len(inj.eligible))]
		inj.crash(now, victim)
	}
	inj.crashTimer.Reset(inj.interval(c.MeanBetween))
}

// crash takes a node down and schedules its recovery.
func (inj *Injector) crash(now sim.Time, victim *p2p.Node) {
	inj.net.CrashNode(victim)
	inj.removeEligible(victim)
	inj.downSince[inj.slot(victim.ID())] = now
	inj.downCount++
	inj.stats.Crashes++
	down := inj.interval(inj.cfg.Crash.MeanDowntime)
	inj.engine.ScheduleCall(down, inj, opRecover, uint64(victim.ID()))
}

// EventName implements sim.EventNamer for engine traces.
func (inj *Injector) EventName(op uint64) string {
	if op == opRecover {
		return "faults.recover"
	}
	return "faults.unknown"
}

// HandleEvent implements sim.Handler for the one-shot recovery events.
func (inj *Injector) HandleEvent(now sim.Time, op, arg uint64) {
	if op != opRecover {
		return
	}
	node, err := inj.net.Node(p2p.NodeID(arg))
	if err != nil {
		return
	}
	inj.recover(now, node)
}

// recover brings a crashed node back and rewires its peer table.
func (inj *Injector) recover(now sim.Time, n *p2p.Node) {
	if !n.Down() {
		return
	}
	inj.net.RecoverNode(n)
	inj.stats.Recoveries++
	if s := inj.slot(n.ID()); inj.downSince[s] >= 0 {
		inj.stats.CrashDowntime += now - inj.downSince[s]
		inj.downSince[s] = -1
		inj.downCount--
	}
	inj.rewire(n)
	inj.addEligible(n)
}

// rewire redials a node's peer table: discovery-table samples first
// (the restarted client's stored neighbors), random top-up after, so
// a node always comes back with close to `degree` connections even
// when its remembered neighbors are down.
func (inj *Injector) rewire(n *p2p.Node) {
	dialed := 0
	// Connect treats an already-connected pair as a nil-error no-op, so
	// count only dials that add a new edge — otherwise repeat picks
	// would leave the node systematically under-connected.
	dial := func(target *p2p.Node) {
		if target.ID() == n.ID() || target.Down() || inj.net.Connected(n, target) {
			return
		}
		if err := inj.net.Connect(n, target); err == nil {
			dialed++
		}
	}
	if inj.universe != nil {
		if s := inj.slot(n.ID()); inj.hasDisc[s] {
			peers, err := inj.universe.SamplePeers(inj.rng, inj.toDisc[s], 2*inj.degree)
			if err == nil {
				for _, pid := range peers {
					if dialed >= inj.degree {
						break
					}
					if target, ok := inj.fromDisc[pid]; ok {
						dial(target)
					}
				}
			}
		}
	}
	for attempts := 0; dialed < inj.degree && attempts < rewireAttemptFactor*inj.degree; attempts++ {
		dial(inj.net.NodeAt(inj.rng.IntN(inj.net.Len())))
	}
}

// churnTick fires one churn event (join or leave) and reschedules.
func (inj *Injector) churnTick(now sim.Time) {
	if inj.stopped {
		return
	}
	c := inj.cfg.Churn
	if c.MaxEvents > 0 && inj.stats.Joins+inj.stats.Leaves >= c.MaxEvents {
		return
	}
	if inj.rng.Bernoulli(c.joinFraction()) {
		inj.join(now)
	} else if len(inj.eligible) > 0 {
		victim := inj.eligible[inj.rng.IntN(len(inj.eligible))]
		inj.leave(victim)
	}
	inj.churnTimer.Reset(inj.interval(c.MeanBetween))
}

// join adds a fresh node to the overlay: its region follows the live
// population (sampled from the eligible pool, which holds exactly the
// up, unprotected nodes — departed nodes never skew the mix), it
// learns the network through a discovery lookup, and dials `degree`
// peers.
func (inj *Injector) join(now sim.Time) {
	var region geo.Region
	if len(inj.eligible) > 0 {
		region = inj.eligible[inj.rng.IntN(len(inj.eligible))].Region()
	} else {
		region = inj.net.NodeAt(inj.rng.IntN(inj.net.Len())).Region()
	}
	n, err := inj.net.AddNode(region, 0)
	if err != nil {
		return
	}
	inj.stats.Joins++
	if inj.universe != nil {
		if err := inj.joinUniverse(n); err == nil {
			id := inj.toDisc[inj.slot(n.ID())]
			table, err := inj.universe.Table(id)
			if err == nil {
				// Seed the newcomer with bootstrap contacts, then one
				// self-lookup to converge its buckets — the discv4 join
				// sequence in miniature.
				for s := 0; s < 3 && inj.net.Len() > 1; s++ {
					contact := inj.net.NodeAt(inj.rng.IntN(inj.net.Len()))
					if cs := inj.slot(contact.ID()); inj.hasDisc[cs] && inj.toDisc[cs] != id {
						_, _ = table.Add(inj.toDisc[cs])
					}
				}
				_, _ = inj.universe.Lookup(id, id, 3)
			}
		}
	}
	inj.rewire(n)
	inj.addEligible(n)
}

// leave removes a node permanently: connections drop and it never
// recovers. Departures are membership change, not failure, so they do
// not accrue downtime.
func (inj *Injector) leave(victim *p2p.Node) {
	inj.net.CrashNode(victim)
	inj.removeEligible(victim)
	inj.stats.Leaves++
}

// addEligible / removeEligible maintain the index-addressed candidate
// pool (swap-delete, O(1), deterministic).
func (inj *Injector) addEligible(n *p2p.Node) {
	s := inj.slot(n.ID())
	if inj.protected[s] || inj.pos[s] >= 0 {
		return
	}
	inj.pos[s] = int32(len(inj.eligible))
	inj.eligible = append(inj.eligible, n)
}

func (inj *Injector) removeEligible(n *p2p.Node) {
	s := inj.slot(n.ID())
	i := inj.pos[s]
	if i < 0 {
		return
	}
	last := len(inj.eligible) - 1
	moved := inj.eligible[last]
	inj.eligible[i] = moved
	inj.pos[inj.slot(moved.ID())] = i
	inj.eligible = inj.eligible[:last]
	inj.pos[s] = -1
}

// FilterLink implements p2p.LinkFilter: partition cuts drop the send,
// then the loss model gets its say. In a sharded run it is called
// concurrently from region lanes, so the sharded variant keeps every
// write and RNG draw keyed by the sender's region.
func (inj *Injector) FilterLink(now sim.Time, from, to *p2p.Node) (sim.Time, error) {
	if inj.laneRNG != nil {
		return inj.filterLinkSharded(now, from, to)
	}
	if len(inj.cfg.Partitions) > 0 && inj.cfg.separated(now, from.Region(), to.Region()) {
		inj.stats.DroppedPartition++
		return 0, ErrPartitioned
	}
	var extra sim.Time
	if l := inj.cfg.Loss; l != nil {
		if l.DropProb > 0 && inj.rng.Bernoulli(l.DropProb) {
			inj.stats.DroppedLoss++
			return 0, ErrLinkLoss
		}
		if l.ExtraDelayMean > 0 {
			extra = inj.rng.ExpTime(l.ExtraDelayMean)
		}
	}
	return extra, nil
}

// filterLinkSharded is FilterLink for sharded transports. The sender's
// region selects both the loss RNG stream and the drop counters: a
// region lane only ever sends for its own nodes, and the global lane's
// phase-A sends run while every region engine is idle, so region-keyed
// state is single-writer by construction. The partition check itself
// reads only the static schedule.
func (inj *Injector) filterLinkSharded(now sim.Time, from, to *p2p.Node) (sim.Time, error) {
	r := from.Region()
	if len(inj.cfg.Partitions) > 0 && inj.cfg.separated(now, r, to.Region()) {
		inj.lanePart[r]++
		return 0, ErrPartitioned
	}
	var extra sim.Time
	if l := inj.cfg.Loss; l != nil {
		rng := inj.laneRNG[r]
		if l.DropProb > 0 && rng.Bernoulli(l.DropProb) {
			inj.laneLoss[r]++
			return 0, ErrLinkLoss
		}
		if l.ExtraDelayMean > 0 {
			extra = rng.ExpTime(l.ExtraDelayMean)
		}
	}
	return extra, nil
}

// EnableSharding prepares FilterLink for concurrent region-lane calls:
// one loss-model RNG stream per sender region — keyed by region, never
// by worker, so the fault schedule stays invariant across shard
// settings — plus per-region drop counters folded into Stats at
// Finalize. Call it once, after construction, before the run starts.
func (inj *Injector) EnableSharding() {
	inj.laneRNG = make([]*sim.RNG, geo.NumRegions+1)
	for r := geo.Region(1); r <= geo.NumRegions; r++ {
		inj.laneRNG[r] = inj.rng.Fork("loss-" + r.String())
	}
	inj.lanePart = make([]uint64, geo.NumRegions+1)
	inj.laneLoss = make([]uint64, geo.NumRegions+1)
}

// VisibilityDeferral is the mining-side partition hook
// (mining.Config.VisibilityFilter): a head-visibility update crossing
// an active cut is deferred until the partition heals, so pools on
// opposite sides keep extending their own chains — the fork-rate
// mechanism spec D2 measures.
func (inj *Injector) VisibilityDeferral(now sim.Time, from, to geo.Region) sim.Time {
	return inj.cfg.healAfter(now, from, to)
}

// Finalize closes the books at the end of the run: still-down nodes
// accrue their outage up to the horizon, and the partition schedule is
// folded into total partition time.
func (inj *Injector) Finalize(now sim.Time) {
	for r := range inj.lanePart {
		inj.stats.DroppedPartition += inj.lanePart[r]
		inj.lanePart[r] = 0
	}
	for r := range inj.laneLoss {
		inj.stats.DroppedLoss += inj.laneLoss[r]
		inj.laneLoss[r] = 0
	}
	for _, since := range inj.downSince {
		if since >= 0 {
			inj.stats.CrashDowntime += now - since
		}
	}
	inj.stats.DownAtEnd = inj.downCount
	for _, p := range inj.cfg.Partitions {
		start, end := p.Start, p.End()
		if end > now {
			end = now
		}
		if end > start {
			inj.stats.PartitionTime += end - start
		}
	}
}

// Stats returns a copy of the event accounting.
func (inj *Injector) Stats() Stats { return inj.stats }
