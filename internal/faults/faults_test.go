package faults

import (
	"errors"
	"testing"

	"repro/internal/geo"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/types"
)

// buildNetwork wires a small two-region overlay for injector tests.
func buildNetwork(t *testing.T, nodesPerRegion int) (*sim.Engine, *p2p.Network, []*p2p.Node) {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRNG(7)
	net := p2p.NewNetwork(engine, rng.Fork("net"), geo.DefaultLatencyModel())
	var nodes []*p2p.Node
	for i := 0; i < nodesPerRegion; i++ {
		for _, r := range []geo.Region{geo.WesternEurope, geo.EasternAsia} {
			n, err := net.AddNode(r, 0)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, n)
		}
	}
	if err := net.WireRandom(4); err != nil {
		t.Fatal(err)
	}
	return engine, net, nodes
}

func testBlock(num uint64) *types.Block {
	return types.NewBlock(types.Header{
		Number: num, MinerLabel: "Testpool", TimeMillis: num, Difficulty: 1, GasLimit: 8_000_000,
	}, nil, nil)
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"empty", Config{}, false},
		{"crash ok", Config{Crash: &Crash{MeanBetween: sim.Second, MeanDowntime: sim.Second}}, true},
		{"crash zero interval", Config{Crash: &Crash{MeanDowntime: sim.Second}}, false},
		{"crash zero downtime", Config{Crash: &Crash{MeanBetween: sim.Second}}, false},
		{"partition ok", Config{Partitions: []Partition{{Start: 0, Duration: sim.Second, Regions: []geo.Region{geo.EasternAsia}}}}, true},
		{"partition empty side", Config{Partitions: []Partition{{Duration: sim.Second}}}, false},
		{"partition whole world", Config{Partitions: []Partition{{Duration: sim.Second, Regions: geo.Regions()}}}, false},
		{"partition dup region", Config{Partitions: []Partition{{Duration: sim.Second, Regions: []geo.Region{geo.EasternAsia, geo.EasternAsia}}}}, false},
		{"partition zero duration", Config{Partitions: []Partition{{Regions: []geo.Region{geo.EasternAsia}}}}, false},
		{"loss ok", Config{Loss: &Loss{DropProb: 0.1}}, true},
		{"loss prob too big", Config{Loss: &Loss{DropProb: 1.5}}, false},
		{"loss no knob", Config{Loss: &Loss{}}, false},
		{"churn ok", Config{Churn: &Churn{MeanBetween: sim.Second}}, true},
		{"churn zero interval", Config{Churn: &Churn{}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

// TestPartitionCrossingSendsDrop is the link-filter contract: while a
// partition is active, cross-side sends return ErrPartitioned and
// same-side sends pass; after the heal everything passes again.
func TestPartitionCrossingSendsDrop(t *testing.T) {
	engine, net, _ := buildNetwork(t, 4)
	cfg := Config{Partitions: []Partition{{
		Start:    100 * sim.Second,
		Duration: 50 * sim.Second,
		Regions:  []geo.Region{geo.EasternAsia, geo.Oceania},
	}}}
	inj, err := New(engine, sim.NewRNG(1), net, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	we, ea := net.NodeAt(0), net.NodeAt(1)
	if we.Region() != geo.WesternEurope || ea.Region() != geo.EasternAsia {
		t.Fatal("fixture regions shifted")
	}
	cases := []struct {
		name     string
		now      sim.Time
		from, to *p2p.Node
		wantErr  error
	}{
		{"before split, cross", 0, we, ea, nil},
		{"active, cross", 120 * sim.Second, we, ea, ErrPartitioned},
		{"active, cross reverse", 120 * sim.Second, ea, we, ErrPartitioned},
		{"active, same side", 120 * sim.Second, we, net.NodeAt(2), nil},
		{"active, isolated side internal", 120 * sim.Second, ea, net.NodeAt(3), nil},
		{"boundary start", 100 * sim.Second, we, ea, ErrPartitioned},
		{"boundary end (healed)", 150 * sim.Second, we, ea, nil},
		{"after heal", 200 * sim.Second, we, ea, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := inj.FilterLink(tc.now, tc.from, tc.to)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("FilterLink(%v, %s->%s) = %v, want %v",
					tc.now, tc.from.Region(), tc.to.Region(), err, tc.wantErr)
			}
		})
	}
	if got := inj.Stats().DroppedPartition; got != 3 {
		t.Fatalf("partition drop count %d, want 3", got)
	}
}

// TestCrashRecoverCycle drives the injector's crash process on a live
// engine: victims lose their connections while down, recover with a
// rewired peer table, and the books balance.
func TestCrashRecoverCycle(t *testing.T) {
	engine, net, nodes := buildNetwork(t, 8)
	cfg := Config{Crash: &Crash{
		MeanBetween:  2 * sim.Second,
		MeanDowntime: 5 * sim.Second,
	}}
	inj, err := New(engine, sim.NewRNG(3), net, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	engine.RunUntil(60 * sim.Second)
	inj.Stop()
	engine.Run() // drain pending recoveries
	inj.Finalize(engine.Now())

	st := inj.Stats()
	if st.Crashes == 0 {
		t.Fatal("no crashes after 60 s at a 2 s mean interval")
	}
	if st.Recoveries != st.Crashes {
		t.Fatalf("crashes %d vs recoveries %d after drain", st.Crashes, st.Recoveries)
	}
	if st.DownAtEnd != 0 {
		t.Fatalf("%d nodes still down after drain", st.DownAtEnd)
	}
	if st.CrashDowntime <= 0 {
		t.Fatal("no downtime accrued")
	}
	// Every node is back up. A few may be isolated — all their peers
	// crashed after their own rewire — but the overlay as a whole must
	// have been rewired back together.
	isolated := 0
	for _, n := range nodes {
		if n.Down() {
			t.Fatalf("node %d still down", n.ID())
		}
		if n.PeerCount() == 0 {
			isolated++
		}
	}
	if isolated > len(nodes)/4 {
		t.Fatalf("%d of %d nodes isolated after recovery", isolated, len(nodes))
	}
}

// TestProtectedNodesNeverCrash pins the measurement/gateway exemption.
func TestProtectedNodesNeverCrash(t *testing.T) {
	engine, net, nodes := buildNetwork(t, 4)
	protected := nodes[:4]
	cfg := Config{
		Crash: &Crash{MeanBetween: sim.Second, MeanDowntime: 30 * sim.Second},
		Churn: &Churn{MeanBetween: sim.Second},
	}
	inj, err := New(engine, sim.NewRNG(5), net, cfg, 4, protected)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	engine.RunUntil(120 * sim.Second)
	inj.Stop()
	for _, n := range protected {
		if n.Down() {
			t.Fatalf("protected node %d crashed or departed", n.ID())
		}
	}
	if inj.Stats().Crashes == 0 || inj.Stats().Joins == 0 {
		t.Fatalf("fault processes idle: %+v", inj.Stats())
	}
}

// TestChurnGrowsAndShrinksOverlay checks joins add live wired nodes
// and leaves are permanent.
func TestChurnGrowsAndShrinksOverlay(t *testing.T) {
	engine, net, _ := buildNetwork(t, 8)
	before := net.Len()
	cfg := Config{Churn: &Churn{MeanBetween: sim.Second}}
	inj, err := New(engine, sim.NewRNG(9), net, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	engine.RunUntil(120 * sim.Second)
	inj.Stop()
	st := inj.Stats()
	if st.Joins == 0 || st.Leaves == 0 {
		t.Fatalf("churn produced joins=%d leaves=%d", st.Joins, st.Leaves)
	}
	if net.Len() != before+st.Joins {
		t.Fatalf("network len %d, want %d + %d joins", net.Len(), before, st.Joins)
	}
	live, down := 0, 0
	joinedWithPeers := 0
	for i := 0; i < net.Len(); i++ {
		n := net.NodeAt(i)
		if n.Down() {
			down++
			continue
		}
		live++
		if i >= before && n.PeerCount() > 0 {
			joinedWithPeers++
		}
	}
	if down != st.Leaves {
		t.Fatalf("%d down nodes, want %d departures", down, st.Leaves)
	}
	if joinedWithPeers == 0 {
		t.Fatal("no joined node holds a connection")
	}
}

// TestLossDropsAndDelays checks the loss model's two knobs through the
// filter interface.
func TestLossDropsAndDelays(t *testing.T) {
	engine, net, _ := buildNetwork(t, 4)
	cfg := Config{Loss: &Loss{DropProb: 0.5, ExtraDelayMean: 40 * sim.Millisecond}}
	inj, err := New(engine, sim.NewRNG(11), net, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.NodeAt(0), net.NodeAt(2)
	drops, delayed := 0, 0
	for i := 0; i < 2000; i++ {
		extra, err := inj.FilterLink(sim.Time(i), a, b)
		if err != nil {
			if !errors.Is(err, ErrLinkLoss) {
				t.Fatalf("unexpected error %v", err)
			}
			drops++
			continue
		}
		if extra > 0 {
			delayed++
		}
	}
	if drops < 800 || drops > 1200 {
		t.Fatalf("drop count %d far from 50%% of 2000", drops)
	}
	if delayed == 0 {
		t.Fatal("no surviving message picked up extra delay")
	}
	if got := inj.Stats().DroppedLoss; got != uint64(drops) {
		t.Fatalf("loss accounting %d, want %d", got, drops)
	}
}

// TestVisibilityDeferral pins the mining-side partition hook: updates
// crossing the active cut wait exactly until the heal.
func TestVisibilityDeferral(t *testing.T) {
	engine, net, _ := buildNetwork(t, 2)
	p := Partition{Start: 10 * sim.Second, Duration: 20 * sim.Second, Regions: []geo.Region{geo.EasternAsia}}
	inj, err := New(engine, sim.NewRNG(13), net, Config{Partitions: []Partition{p}}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.VisibilityDeferral(5*sim.Second, geo.EasternAsia, geo.WesternEurope); d != 0 {
		t.Fatalf("deferral before split: %v", d)
	}
	if d := inj.VisibilityDeferral(15*sim.Second, geo.EasternAsia, geo.WesternEurope); d != 15*sim.Second {
		t.Fatalf("deferral mid-split: %v, want 15s", d)
	}
	if d := inj.VisibilityDeferral(15*sim.Second, geo.WesternEurope, geo.CentralEurope); d != 0 {
		t.Fatalf("deferral same side: %v", d)
	}
	if d := inj.VisibilityDeferral(35*sim.Second, geo.EasternAsia, geo.WesternEurope); d != 0 {
		t.Fatalf("deferral after heal: %v", d)
	}
}

// TestInjectorDeterminism runs the same fault schedule twice over
// identically seeded networks and demands identical event accounting
// and final topology.
func TestInjectorDeterminism(t *testing.T) {
	run := func() (Stats, []int) {
		engine, net, _ := buildNetwork(t, 8)
		cfg := Config{
			Crash: &Crash{MeanBetween: 3 * sim.Second, MeanDowntime: 10 * sim.Second},
			Churn: &Churn{MeanBetween: 4 * sim.Second},
			Loss:  &Loss{DropProb: 0.01},
		}
		inj, err := New(engine, sim.NewRNG(21), net, cfg, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		inj.Start()
		// Interleave fault processing with protocol traffic so loss
		// draws interleave with crash/churn draws.
		for i := 0; i < 20; i++ {
			net.NodeAt(i%net.Len()).InjectBlock(engine.Now(), testBlock(uint64(i+1)))
			engine.RunFor(10 * sim.Second)
		}
		inj.Stop()
		engine.Run()
		inj.Finalize(engine.Now())
		degrees := make([]int, net.Len())
		for i := 0; i < net.Len(); i++ {
			degrees[i] = net.NodeAt(i).PeerCount()
		}
		return inj.Stats(), degrees
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("overlay size diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("node %d degree diverged: %d vs %d", i, d1[i], d2[i])
		}
	}
}
