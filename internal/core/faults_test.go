package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/sim"
)

// faultCampaign returns a fast faulted configuration.
func faultCampaign(seed uint64, fc *faults.Config) CampaignConfig {
	cfg := DefaultCampaignConfig(seed)
	cfg.NetworkNodes = 120
	cfg.Blocks = 50
	cfg.Streaming = true
	cfg.Faults = fc
	return cfg
}

// TestFaultedCampaignEndToEnd runs all four fault classes at once and
// checks the campaign completes, drains, and reports coherent
// dependability accounting.
func TestFaultedCampaignEndToEnd(t *testing.T) {
	horizon := 50 * 13300 * sim.Millisecond
	res, err := RunCampaign(faultCampaign(11, &faults.Config{
		Crash: &faults.Crash{MeanBetween: horizon / 20, MeanDowntime: 30 * sim.Second},
		Partitions: []faults.Partition{{
			Start:    horizon / 4,
			Duration: horizon / 4,
			Regions:  []geo.Region{geo.EasternAsia, geo.Oceania},
		}},
		Loss:  &faults.Loss{DropProb: 0.01, ExtraDelayMean: 10 * sim.Millisecond},
		Churn: &faults.Churn{MeanBetween: horizon / 30},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("faulted campaign reported no fault stats")
	}
	st := res.Faults
	if st.Crashes == 0 {
		t.Error("no crashes fired")
	}
	if st.Crashes != st.Recoveries+st.DownAtEnd {
		t.Errorf("crash books don't balance: %d crashes, %d recoveries, %d down at end",
			st.Crashes, st.Recoveries, st.DownAtEnd)
	}
	if st.Joins+st.Leaves == 0 {
		t.Error("no churn events fired")
	}
	if st.PartitionTime == 0 {
		t.Error("no partition time accrued")
	}
	if res.MessagesDropped == 0 {
		t.Error("no messages dropped across a partition plus loss")
	}
	if res.Duration <= 0 {
		t.Error("campaign reported no duration")
	}
	// The chain view still reconstructs: the partition heals, the
	// catch-up fetch pulls the gap, and all four vantage points end
	// with a usable main chain.
	if len(res.View.Main) < 10 {
		t.Errorf("reconstructed main chain has only %d blocks", len(res.View.Main))
	}
	quiet := make(map[string]sim.Time, len(res.Nodes))
	for _, n := range res.Nodes {
		quiet[n.Name()] = n.MaxQuietGap()
	}
	avail, err := analysis.Availability(st, 120, res.Duration, res.MessagesDropped, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if avail.Availability <= 0 || avail.Availability >= 1 {
		t.Errorf("availability %v outside (0,1) despite crashes", avail.Availability)
	}
	if avail.MaxQuietGapS <= 0 {
		t.Error("no quiet gap observed across a 1/4-run partition")
	}
	if analysis.RenderAvailability(avail) == "" {
		t.Error("empty availability rendering")
	}
}

// TestHealthyCampaignUnaffectedByFaultSupport pins the zero-cost
// contract: a nil Faults config produces a campaign with no injector,
// no drops, and no fault stats — the pre-fault behavior.
func TestHealthyCampaignUnaffectedByFaultSupport(t *testing.T) {
	cfg := faultCampaign(13, nil)
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Error("healthy campaign grew fault stats")
	}
	if res.MessagesDropped != 0 {
		t.Errorf("healthy campaign dropped %d messages", res.MessagesDropped)
	}
	if _, err := analysis.Availability(nil, 120, res.Duration, 0, nil); err == nil {
		t.Error("availability analysis accepted a healthy campaign")
	}
}

// TestPartitionRaisesForkRate is the D2 mechanism at unit scale: the
// same seed with and without a mid-run partition, where the split must
// add competing branches.
func TestPartitionRaisesForkRate(t *testing.T) {
	horizon := 50 * 13300 * sim.Millisecond
	forkBlocks := func(fc *faults.Config) int {
		res, err := RunCampaign(faultCampaign(17, fc))
		if err != nil {
			t.Fatal(err)
		}
		forks, err := analysis.Forks(res.View)
		if err != nil {
			t.Fatal(err)
		}
		return forks.UncleBlocks + forks.UnrecognizedBlocks
	}
	healthy := forkBlocks(nil)
	parted := forkBlocks(&faults.Config{
		Partitions: []faults.Partition{{
			Start:    horizon / 5,
			Duration: 2 * horizon / 5,
			Regions:  []geo.Region{geo.EasternAsia},
		}},
	})
	if parted <= healthy {
		t.Errorf("partition did not raise fork blocks: healthy %d, partitioned %d", healthy, parted)
	}
}
