package core

import (
	"testing"

	"repro/internal/analysis"
)

// TestKademliaWiringPreservesGeoFindings validates the statistical
// shortcut: the devp2p-style discovery wiring and uniform random
// wiring must yield the same geographic conclusions (EA first, NA
// last), because node identities carry no location structure
// (§III-B1).
func TestKademliaWiringPreservesGeoFindings(t *testing.T) {
	run := func(kademlia bool) map[string]float64 {
		t.Helper()
		cfg := smallCampaign(31)
		cfg.KademliaWiring = kademlia
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		first, err := analysis.FirstObservations(res.Index)
		if err != nil {
			t.Fatal(err)
		}
		return first.Share
	}
	random := run(false)
	kademlia := run(true)
	for _, shares := range []map[string]float64{random, kademlia} {
		if shares["EA"] < shares["NA"] {
			t.Fatalf("EA must lead NA under both wirings: %+v", shares)
		}
		if shares["EA"] < 0.25 {
			t.Fatalf("EA share collapsed: %+v", shares)
		}
	}
	// The wirings should agree within a loose band.
	if diff := random["EA"] - kademlia["EA"]; diff > 0.25 || diff < -0.25 {
		t.Fatalf("wirings disagree on EA: %v vs %v", random["EA"], kademlia["EA"])
	}
}

func TestKademliaWiringConnectsEveryone(t *testing.T) {
	cfg := smallCampaign(32)
	cfg.KademliaWiring = true
	c, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.network.Nodes() {
		if n.PeerCount() == 0 {
			t.Fatalf("node %d isolated under kademlia wiring", n.ID())
		}
	}
}
