// Package core orchestrates complete measurement campaigns: it builds
// the simulated Ethereum network, runs mining pools and a transaction
// workload over it, attaches geographically dispersed instrumented
// measurement nodes, and hands the merged logs to the analysis
// pipeline.
//
// This is the reproduction's top-level public API. A downstream user
// does:
//
//	cfg := core.DefaultCampaignConfig(42)
//	result, err := core.RunCampaign(cfg)
//	fig1, err := analysis.PropagationDelays(result.Index)
//
// matching the original study's workflow: deploy instrumented clients
// (§II), collect logs, post-process (§III).
package core

import (
	"errors"
	"fmt"
	"os"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/chain"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/p2p/relay"
	"repro/internal/sim"
	"repro/internal/txgen"
	"repro/internal/types"
)

// MeasurementSpec describes one measurement-node deployment.
type MeasurementSpec struct {
	// Name labels the node; the paper uses region abbreviations.
	Name string
	// Region places the node.
	Region geo.Region
	// Peers is the connection count. The paper's four primary nodes
	// ran "unlimited" (>100 live peers); its subsidiary node ran the
	// Geth default of 25. Peers <= 0 means "unlimited", which the
	// campaign scales to half the overlay (first-observation behavior
	// depends on absolute peer coverage, which does not shrink when
	// the overlay is scaled down).
	Peers int
}

// PaperMeasurementSpecs returns the four vantage points of the study:
// North America, Eastern Asia, Western Europe, Central Europe, each
// with >100 peers.
func PaperMeasurementSpecs(peers int) []MeasurementSpec {
	return []MeasurementSpec{
		{Name: "NA", Region: geo.NorthAmerica, Peers: peers},
		{Name: "EA", Region: geo.EasternAsia, Peers: peers},
		{Name: "WE", Region: geo.WesternEurope, Peers: peers},
		{Name: "CE", Region: geo.CentralEurope, Peers: peers},
	}
}

// CampaignConfig parameterizes an end-to-end campaign.
type CampaignConfig struct {
	// Seed makes the whole campaign reproducible.
	Seed uint64
	// NetworkNodes is the overlay size (the 2019 mainnet had ~15,000
	// peers; experiments scale this down, which preserves gossip
	// behavior since dissemination cost is logarithmic).
	NetworkNodes int
	// Degree is each node's dial-out count (union degree ~2x).
	Degree int
	// NodeShare distributes overlay nodes across regions; nil uses
	// geo.DefaultNodeShare.
	NodeShare map[geo.Region]float64
	// Latency is the geographic delay model.
	Latency geo.LatencyModel
	// Relay selects and parameterizes the block-relay protocol (the
	// zero value is the paper's eth/63 sqrt-push rule).
	Relay relay.Config
	// KademliaWiring builds the overlay through the devp2p-style
	// discovery substrate (internal/discovery) instead of uniform
	// random wiring. Both produce location-independent neighbor
	// relationships (§III-B1); a test asserts the geographic findings
	// agree.
	KademliaWiring bool
	// Measurement lists the instrumented nodes to attach.
	Measurement []MeasurementSpec
	// PerfectClocks disables NTP error (for ground-truth validation
	// runs); the default samples the paper's NTP mixture.
	PerfectClocks bool
	// Streaming makes measurement nodes fold receptions into O(items)
	// aggregates instead of retaining raw Records: campaign memory
	// stays O(blocks + transactions) rather than O(receptions), and
	// the analysis index is built without materializing a log. The
	// resulting Index — and every analysis on it — is identical to the
	// raw-log path; only CampaignResult.Dataset.Records is empty. Use
	// the default (false) when the raw JSONL log itself is the product
	// (cmd/ethmeasure).
	Streaming bool
	// CaptureTxLinks records per-block transaction hash lists,
	// required for commit-time analyses.
	CaptureTxLinks bool
	// Mining configures pools and block production. Mining.OnBlock is
	// overridden by the campaign (blocks are injected at gateways).
	Mining mining.Config
	// Blocks is the number of block heights to produce.
	Blocks uint64
	// Workload optionally runs a transaction workload. Workload.Submit
	// is overridden by the campaign. Nil disables transactions.
	Workload *txgen.Config
	// Faults optionally injects dependability events (crash/recover,
	// partitions, link loss, churn) into the running campaign.
	// Measurement nodes and pool gateways are protected, matching the
	// paper's always-on infrastructure. Nil keeps the campaign healthy
	// — and byte-identical to the pre-fault engine.
	Faults *faults.Config
	// Shards enables sharded intra-run execution: the overlay is
	// partitioned into one event lane per region, advanced concurrently
	// under conservative lookahead by up to Shards worker goroutines.
	// 0 (the default) keeps the single-engine path and its byte-exact
	// artifact streams; when 0, the ETHREPRO_SHARDS environment
	// variable (a positive integer) supplies the value instead. Any
	// value >= 1 selects the sharded schedule, whose artifacts are
	// byte-identical across all Shards values — the lane decomposition
	// is fixed by the region enum, and Shards only sets the worker
	// count (clamped to the region count). Sharded artifacts may differ
	// from single-engine ones: per-lane RNG streams replace the single
	// transport stream.
	Shards int
}

// DefaultCampaignConfig returns a network-level campaign sized for the
// propagation experiments (Figs. 1-3): ~1,500 nodes, four unlimited-
// peer measurement nodes, no transaction workload.
func DefaultCampaignConfig(seed uint64) CampaignConfig {
	return CampaignConfig{
		Seed:         seed,
		NetworkNodes: 1500,
		Degree:       8,
		Latency:      geo.DefaultLatencyModel(),
		Measurement:  PaperMeasurementSpecs(0), // unlimited, like the paper
		Mining:       mining.DefaultConfig(),
		Blocks:       1000,
	}
}

// CampaignResult bundles everything a campaign produced.
type CampaignResult struct {
	// Dataset is the merged measurement log.
	Dataset *analysis.Dataset
	// Index is the pre-built observation index.
	Index *analysis.Index
	// View is the chain view reconstructed from the logs (what the
	// original study could compute) — use for log-based analyses.
	View *analysis.ChainView
	// Tree is the simulation's ground-truth block tree (not available
	// to the original study; used for validation).
	Tree *chain.BlockTree
	// Nodes are the measurement nodes (logs, clocks).
	Nodes []*measure.Node
	// TxRecords is the workload ground truth (empty without a
	// workload).
	TxRecords []txgen.TxRecord
	// MultiVersionTuples is the miner-side one-miner-fork ground
	// truth.
	MultiVersionTuples map[types.Hash]int
	// MessagesSent / BytesSent are transport totals.
	MessagesSent uint64
	BytesSent    uint64
	// Bandwidth is the per-protocol transport accounting: per-class
	// byte counters, per-vantage ingress/egress and the compact-relay
	// reconstruction profile.
	Bandwidth *analysis.Bandwidth
	// MessagesDropped counts sends and deliveries discarded by faults
	// (always zero on a healthy campaign).
	MessagesDropped uint64
	// Faults is the fault injector's event accounting (nil when no
	// faults were configured).
	Faults *faults.Stats
	// Duration is the virtual time the campaign ran for.
	Duration sim.Time
}

// Campaign is a configured, runnable measurement campaign.
type Campaign struct {
	cfg    CampaignConfig
	engine *sim.Engine
	// cond drives sharded execution (nil single-engine); shards is the
	// resolved worker count. engine is then the conductor's global lane
	// — mining, workload and fault timers all live there.
	cond    *sim.Conductor
	shards  int
	rng     *sim.RNG
	network *p2p.Network
	// byRegn indexes overlay nodes by region (regions are a dense
	// 1-based enum; slot 0 stays empty).
	byRegn [geo.NumRegions + 1][]*p2p.Node
	// poolIdx interns pool names to dense indices into gateways; each
	// pool's gateways are a region-indexed array. The block-injection
	// hot path resolves (pool, region) with one map probe and one array
	// read instead of two map lookups.
	poolIdx  map[string]int32
	gateways [][geo.NumRegions + 1]*p2p.Node
	miners   *mining.Simulator
	txPool   *chain.TxPool
	gen      *txgen.Generator
	nodes    []*measure.Node
	injector *faults.Injector
	obsScope *obs.RunScope
}

// NewCampaign validates the configuration and builds the network,
// pools, workload and measurement nodes (nothing runs yet).
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	if cfg.NetworkNodes < 10 {
		return nil, fmt.Errorf("core: network of %d nodes is too small", cfg.NetworkNodes)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("core: degree %d < 1", cfg.Degree)
	}
	if cfg.Blocks == 0 {
		return nil, errors.New("core: campaign needs Blocks > 0")
	}
	if len(cfg.Measurement) == 0 {
		return nil, errors.New("core: campaign needs measurement nodes")
	}
	shards := resolveShards(cfg.Shards)
	var cond *sim.Conductor
	engine := sim.NewEngine()
	if shards > 0 {
		// Sharded: one lane per region plus the global lane every
		// centrally scheduled subsystem (mining, workload, faults,
		// injection) runs on. The decomposition is fixed — shards only
		// sets phase-B worker concurrency — so artifacts are identical
		// at every shards value.
		cond = sim.NewConductor(geo.NumRegions)
		engine = cond.Global()
	}
	rootRNG := sim.NewRNG(cfg.Seed)

	c := &Campaign{
		cfg:    cfg,
		engine: engine,
		cond:   cond,
		shards: shards,
		rng:    rootRNG,
		// Observability reads engine counters and wall clocks only —
		// it touches no RNG, so a traced campaign replays the untraced
		// one byte for byte. A nil scope (collection disabled) is
		// inert.
		obsScope: obs.Default.StartRun(cfg.Seed, engine),
	}

	// Overlay.
	share := cfg.NodeShare
	if share == nil {
		share = geo.DefaultNodeShare
	}
	c.network = p2p.NewNetwork(engine, rootRNG.Fork("network"), cfg.Latency)
	proto, err := relay.New(cfg.Relay)
	if err != nil {
		return nil, fmt.Errorf("core: relay: %w", err)
	}
	c.network.SetRelay(proto)
	placement, err := geo.PlaceNodes(cfg.NetworkNodes, share)
	if err != nil {
		return nil, fmt.Errorf("core: place nodes: %w", err)
	}
	for _, r := range placement {
		n, err := c.network.AddNode(r, 0)
		if err != nil {
			return nil, fmt.Errorf("core: add node: %w", err)
		}
		c.byRegn[r] = append(c.byRegn[r], n)
	}
	if cfg.KademliaWiring {
		if err := wireKademlia(c.network, rootRNG.Fork("discovery"), cfg.Degree); err != nil {
			return nil, fmt.Errorf("core: wire overlay (kademlia): %w", err)
		}
	} else {
		if err := c.network.WireRandom(cfg.Degree); err != nil {
			return nil, fmt.Errorf("core: wire overlay: %w", err)
		}
	}

	// Measurement nodes (attached before traffic starts, like the
	// study's month-long deployment).
	clockRNG := rootRNG.Fork("clocks")
	for _, spec := range cfg.Measurement {
		clock := geo.NewClock(clockRNG)
		if cfg.PerfectClocks {
			clock = geo.PerfectClock()
		}
		peers := spec.Peers
		if peers <= 0 {
			peers = cfg.NetworkNodes / 2
		}
		m, err := measure.Attach(c.network, measure.Options{
			Name:           spec.Name,
			Region:         spec.Region,
			Peers:          peers,
			CaptureTxLinks: cfg.CaptureTxLinks,
			Streaming:      cfg.Streaming,
		}, clock)
		if err != nil {
			return nil, fmt.Errorf("core: attach %s: %w", spec.Name, err)
		}
		c.nodes = append(c.nodes, m)
	}

	// Pool gateways are dedicated, well-connected nodes (§III-B2:
	// pools place gateways in several locations to disseminate their
	// blocks). A gateway's dense peering makes the first dissemination
	// wave regional — the mechanism behind Figs. 2-3.
	gatewayPeers := cfg.NetworkNodes / 3
	if gatewayPeers < 2*cfg.Degree {
		gatewayPeers = 2 * cfg.Degree
	}
	c.poolIdx = make(map[string]int32, len(cfg.Mining.Pools))
	for _, pool := range cfg.Mining.Pools {
		var perRegion [geo.NumRegions + 1]*p2p.Node
		for _, r := range pool.GatewayRegions {
			gw, err := c.network.AddNode(r, 0)
			if err != nil {
				return nil, fmt.Errorf("core: gateway %s/%v: %w", pool.Name, r, err)
			}
			if err := c.network.ConnectSampleBiased(gw, gatewayPeers, 0.5); err != nil {
				return nil, fmt.Errorf("core: wire gateway %s/%v: %w", pool.Name, r, err)
			}
			perRegion[r] = gw
		}
		c.poolIdx[pool.Name] = int32(len(c.gateways))
		c.gateways = append(c.gateways, perRegion)
	}

	// Fault injection. The RNG fork happens only when faults are
	// configured, so healthy campaigns consume exactly the draws they
	// always did (byte-identical artifacts). Measurement peers and
	// pool gateways are protected from crashes and departures.
	miningCfg := cfg.Mining
	if cfg.Faults.Enabled() {
		var protected []*p2p.Node
		for _, m := range c.nodes {
			protected = append(protected, m.Peer())
		}
		for _, pool := range cfg.Mining.Pools {
			for _, r := range pool.GatewayRegions {
				if gw := c.gateways[c.poolIdx[pool.Name]][r]; gw != nil {
					protected = append(protected, gw)
				}
			}
		}
		inj, err := faults.New(engine, rootRNG.Fork("faults"), c.network, *cfg.Faults, cfg.Degree, protected)
		if err != nil {
			return nil, fmt.Errorf("core: faults: %w", err)
		}
		c.injector = inj
		c.network.Fault = inj
		// Degraded campaigns get the catch-up fetch: partition-era
		// ancestry is pulled after the heal, the way real clients
		// header-sync across an outage.
		c.network.ParentPull = true
		if len(cfg.Faults.Partitions) > 0 {
			miningCfg.VisibilityFilter = inj.VisibilityDeferral
		}
	}

	// Transaction workload feeds a global pool miners draw from.
	miningCfg.BlockLimit = cfg.Blocks
	if cfg.Workload != nil {
		c.txPool = chain.NewTxPool()
		miningCfg.TxPool = c.txPool
		wl := *cfg.Workload
		wl.Submit = c.submitTx
		gen, err := txgen.NewGenerator(engine, rootRNG.Fork("txgen"), wl)
		if err != nil {
			return nil, fmt.Errorf("core: workload: %w", err)
		}
		c.gen = gen
	}

	// Mining pools inject blocks at gateway-region nodes. When the
	// last block is produced the workload and fault processes stop, so
	// the run drains: an unlimited generator or a recurring fault
	// timer would otherwise keep the engine busy forever.
	miningCfg.OnBlock = c.injectBlock
	miningCfg.OnDone = func(sim.Time) {
		if c.gen != nil {
			c.gen.Stop()
		}
		if c.injector != nil {
			c.injector.Stop()
		}
	}
	miners, err := mining.NewSimulator(engine, rootRNG.Fork("mining"), miningCfg)
	if err != nil {
		return nil, fmt.Errorf("core: mining: %w", err)
	}
	c.miners = miners

	// Shard the transport last, after every build-time RNG draw
	// (wiring, gateways, fault schedule): per-lane streams fork from
	// the network RNG here, at a point that is the same no matter what
	// the rest of the configuration did.
	if cond != nil {
		cond.SetBounds(lookaheadBounds(cfg.Latency))
		// The global lane's only lane-touching events are block
		// injections, and those all fire inside mining race wins — the
		// other global events (per-pool head-visibility updates) are
		// internal, so the pending race timer is a sound lookahead
		// horizon. A workload or fault plan adds global events that
		// touch arbitrary nodes (transaction submission, crash/link
		// timers), so those campaigns keep the conservative
		// next-global-event bound.
		if cfg.Workload == nil && cfg.Faults == nil {
			cond.GlobalHorizon = miners.NextInjectionAt
		}
		c.network.EnableSharding(cond, func() relay.Protocol {
			return relay.MustNew(cfg.Relay)
		})
		if c.injector != nil {
			c.injector.EnableSharding()
		}
	}
	return c, nil
}

// lookaheadBounds derives the conductor's per-lane-pair lookahead
// matrix from the campaign's latency model: bound[src][dst] is the
// smallest delay the transport can sample between the two regions
// (geo.MinPairDelay — for the default model max(1 ms, 0.25 × base),
// e.g. ~18 ms for NA↔EA against the uniform 1 ms floor). The bound
// stays sound under every fault class: link faults only *add* delay
// (FilterLink's extra is drawn from an exponential, never negative)
// and partitions/crashes only drop messages outright — no fault can
// accelerate a delivery below the model's floor.
//
// ETHREPRO_UNIFORM_LOOKAHEAD=1 forces the pre-topology uniform 1 ms
// matrix. The bounds only move phase-B window deadlines, never the
// event schedule, so artifacts must be byte-identical either way —
// the golden shard harness pins exactly that.
func lookaheadBounds(m geo.LatencyModel) [][]sim.Time {
	uniform := os.Getenv("ETHREPRO_UNIFORM_LOOKAHEAD") == "1"
	bounds := make([][]sim.Time, geo.NumRegions)
	for i, from := range geo.Regions() {
		bounds[i] = make([]sim.Time, geo.NumRegions)
		for j, to := range geo.Regions() {
			if uniform {
				bounds[i][j] = 1
				continue
			}
			d, err := m.MinPairDelay(from, to)
			if err != nil {
				panic(err) // unreachable: Regions() only yields valid regions
			}
			bounds[i][j] = d
		}
	}
	return bounds
}

// resolveShards maps the Shards knob (with the ETHREPRO_SHARDS
// fallback when unset) to a worker count: 0 single-engine, otherwise
// clamped to [1, NumRegions] — more workers than lanes cannot help.
func resolveShards(shards int) int {
	if shards == 0 {
		if v := os.Getenv("ETHREPRO_SHARDS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				shards = n
			}
		}
	}
	if shards <= 0 {
		return 0
	}
	return min(shards, geo.NumRegions)
}

// submitTx delivers a workload transaction into the overlay at a node
// in the sender's region, and into the global pool for miners. A
// private transaction reaches only the pool — miners can include it,
// but no overlay mempool ever sees it.
func (c *Campaign) submitTx(now sim.Time, tx *types.Transaction, origin geo.Region, private bool) {
	// Mining pools learn about transactions through their own edge
	// infrastructure; the global pool models their union mempool.
	if c.txPool != nil {
		// Duplicate/stale adds are expected (held re-emissions) and
		// harmless.
		_, _ = c.txPool.Add(tx)
	}
	if private {
		return
	}
	if node := c.regionNode(origin); node != nil {
		node.InjectTx(now, tx)
	}
}

// injectBlock publishes a freshly mined block at the producing pool's
// gateway node for the chosen region.
func (c *Campaign) injectBlock(ev mining.BlockEvent) {
	if pi, ok := c.poolIdx[ev.Pool]; ok && ev.Gateway >= 1 && ev.Gateway <= geo.NumRegions {
		if gw := c.gateways[pi][ev.Gateway]; gw != nil {
			gw.InjectBlock(ev.Now, ev.Block)
			return
		}
	}
	// Unknown pool/region (possible in hand-built configs): fall back
	// to any node in the gateway region.
	if node := c.regionNode(ev.Gateway); node != nil {
		node.InjectBlock(ev.Now, ev.Block)
	}
}

// regionNode picks a random overlay node in a region (any region's
// node when that region hosts none).
func (c *Campaign) regionNode(r geo.Region) *p2p.Node {
	var nodes []*p2p.Node
	if r >= 1 && r <= geo.NumRegions {
		nodes = c.byRegn[r]
	}
	if len(nodes) == 0 {
		all := c.network.Nodes()
		if len(all) == 0 {
			return nil
		}
		return all[c.rng.IntN(len(all))]
	}
	return nodes[c.rng.IntN(len(nodes))]
}

// Run executes the campaign to completion and assembles the result.
func (c *Campaign) Run() (*CampaignResult, error) {
	c.obsScope.RunStarted()
	if c.gen != nil {
		c.gen.Start()
	}
	if c.injector != nil {
		c.injector.Start()
	}
	c.miners.Start()
	// Mining's OnDone stops the workload and fault processes after the
	// last block; the run then drains propagation events, held
	// releases and pending recoveries.
	if c.cond != nil {
		c.cond.Run(c.shards)
		// Fold per-lane transport and protocol counters back into the
		// network's public accounting before anything reads it.
		c.network.FinishSharded()
	} else {
		c.engine.Run()
	}
	if c.injector != nil {
		c.injector.Finalize(c.now())
	}
	c.obsScope.Finish(obs.RunSample{
		Engine:   c.engineStats(),
		Messages: c.network.MessagesSent,
		Bytes:    c.network.BytesSent,
		Dropped:  c.network.MessagesDropped,
		Nodes:    c.network.Len(),
		Shard:    c.shardSample(),
	})

	var (
		ds  *analysis.Dataset
		idx *analysis.Index
		err error
	)
	if c.cfg.Streaming {
		ds, err = analysis.MergeNodeMeta(c.nodes)
		if err != nil {
			return nil, fmt.Errorf("core: merge logs: %w", err)
		}
		idx, err = analysis.IndexFromStreams(c.nodes)
		if err != nil {
			return nil, fmt.Errorf("core: index logs: %w", err)
		}
	} else {
		ds, err = analysis.MergeNodes(c.nodes)
		if err != nil {
			return nil, fmt.Errorf("core: merge logs: %w", err)
		}
		idx, err = analysis.BuildIndex(ds)
		if err != nil {
			return nil, fmt.Errorf("core: index logs: %w", err)
		}
	}
	view, err := analysis.ViewFromIndex(idx)
	if err != nil {
		return nil, fmt.Errorf("core: reconstruct chain: %w", err)
	}
	res := &CampaignResult{
		Dataset:            ds,
		Index:              idx,
		View:               view,
		Tree:               c.miners.Tree(),
		Nodes:              c.nodes,
		MultiVersionTuples: c.miners.MultiVersionTuples(),
		MessagesSent:       c.network.MessagesSent,
		BytesSent:          c.network.BytesSent,
		MessagesDropped:    c.network.MessagesDropped,
		Bandwidth:          c.bandwidth(),
		Duration:           c.now(),
	}
	if c.injector != nil {
		stats := c.injector.Stats()
		res.Faults = &stats
	}
	if c.gen != nil {
		res.TxRecords = c.gen.Records()
	}
	return res, nil
}

// now returns the run's time frontier: the last executed event across
// lanes when sharded, the engine clock otherwise. The sharded branch
// deliberately avoids Conductor.Now — final lane clocks sit at granted
// deadlines, whose overshoot past the last event depends on the
// lookahead bound matrix, and this frontier feeds artifacts (campaign
// Duration, fault-outage truncation) that must not.
func (c *Campaign) now() sim.Time {
	if c.cond != nil {
		return c.cond.Frontier()
	}
	return c.engine.Now()
}

// engineStats snapshots the run's engine counters: the single engine's
// unsharded, or the cross-lane aggregate — counter sums, max clock,
// summed queue high-water marks (total in-flight depth) — sharded.
func (c *Campaign) engineStats() sim.EngineStats {
	if c.cond == nil {
		return c.engine.Stats()
	}
	var agg sim.EngineStats
	for _, s := range c.laneStats() {
		agg.Processed += s.Processed
		agg.Scheduled += s.Scheduled
		agg.Pending += s.Pending
		agg.MaxPending += s.MaxPending
		agg.Slots += s.Slots
		if s.Now > agg.Now {
			agg.Now = s.Now
		}
	}
	return agg
}

// laneStats returns per-lane engine snapshots, global lane first.
func (c *Campaign) laneStats() []sim.EngineStats {
	out := make([]sim.EngineStats, 0, geo.NumRegions+1)
	out = append(out, c.cond.Global().Stats())
	for r := 0; r < c.cond.Regions(); r++ {
		out = append(out, c.cond.Lane(r).Stats())
	}
	return out
}

// shardSample builds the telemetry record for a sharded run (nil
// single-engine).
func (c *Campaign) shardSample() *obs.ShardSample {
	if c.cond == nil {
		return nil
	}
	cs := c.cond.Stats()
	return &obs.ShardSample{
		Workers:       c.shards,
		Windows:       cs.Windows,
		GlobalWindows: cs.GlobalWindows,
		LaneWindows:   cs.LaneWindows,
		Stalled:       cs.Stalled,
		Merged:        cs.Merged,
		Lanes:         c.laneStats(),
		Pairs:         cs.Pairs,
	}
}

// bandwidth assembles the per-protocol transport accounting from the
// network's class counters, the measurement nodes' ingress/egress and
// the relay protocol's reconstruction counters.
func (c *Campaign) bandwidth() *analysis.Bandwidth {
	proto := c.network.Relay()
	b := &analysis.Bandwidth{
		Protocol:        proto.Mode().String(),
		TotalMessages:   c.network.MessagesSent,
		TotalBytes:      c.network.BytesSent,
		DroppedMessages: c.network.MessagesDropped,
		Blocks:          c.cfg.Blocks,
	}
	for _, ct := range c.network.ClassTotals() {
		b.Classes = append(b.Classes, analysis.BandwidthClass{
			Name: ct.Kind.String(), Messages: ct.Messages, Bytes: ct.Bytes,
		})
	}
	for _, m := range c.nodes {
		peer := m.Peer()
		b.Vantages = append(b.Vantages, analysis.VantageBandwidth{
			Name:        m.Name(),
			MessagesIn:  peer.MessagesIn(),
			BytesIn:     peer.BytesIn(),
			MessagesOut: peer.MessagesOut(),
			BytesOut:    peer.BytesOut(),
		})
	}
	ctr := proto.Counters()
	b.Reconstruction = analysis.Reconstruction{
		SketchesSent:     ctr.SketchesSent,
		SketchesReceived: ctr.SketchesReceived,
		Full:             ctr.ReconstructFull,
		Partial:          ctr.ReconstructPartial,
		Fallback:         ctr.ReconstructFallback,
		MissingTxs:       ctr.MissingTxs,
		MissingTxBytes:   ctr.MissingTxBytes,
	}
	return b
}

// RunCampaign is the one-call convenience wrapper.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	c, err := NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// ChainOnlyResult is the output of a chain-level run (no network, no
// measurement nodes): the ground-truth tree viewed directly.
type ChainOnlyResult struct {
	Tree               *chain.BlockTree
	View               *analysis.ChainView
	MultiVersionTuples map[types.Hash]int
	// PublishTimes records when each block was published (for honest
	// miners, its mining time; for withholders, the burst release
	// time). Feed to analysis.DetectWithholding.
	PublishTimes map[types.Hash]sim.Time
}

// RunChainOnly executes the mining model without a network overlay.
// The fork/uncle/empty-block/sequence statistics (Figs. 6-7, Table
// III, §III-C5, §III-D) are chain-level properties; skipping gossip
// lets these experiments run at the paper's 200k-block (and beyond)
// scale.
func RunChainOnly(seed uint64, blocks uint64, mutate func(*mining.Config)) (*ChainOnlyResult, error) {
	if blocks == 0 {
		return nil, errors.New("core: chain-only run needs blocks > 0")
	}
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	cfg := mining.DefaultConfig()
	cfg.BlockLimit = blocks
	if mutate != nil {
		mutate(&cfg)
	}
	publish := make(map[types.Hash]sim.Time)
	userHook := cfg.OnBlock
	cfg.OnBlock = func(ev mining.BlockEvent) {
		if _, dup := publish[ev.Block.Hash()]; !dup {
			publish[ev.Block.Hash()] = ev.Now
		}
		if userHook != nil {
			userHook(ev)
		}
	}
	s, err := mining.NewSimulator(engine, rng, cfg)
	if err != nil {
		return nil, err
	}
	scope := obs.Default.StartRun(seed, engine)
	scope.RunStarted()
	s.Start()
	engine.Run()
	scope.Finish(obs.RunSample{Engine: engine.Stats()})
	view, err := analysis.ViewFromTree(s.Tree())
	if err != nil {
		return nil, err
	}
	return &ChainOnlyResult{
		Tree:               s.Tree(),
		View:               view,
		MultiVersionTuples: s.MultiVersionTuples(),
		PublishTimes:       publish,
	}, nil
}
