package core

import (
	"fmt"
	"strconv"

	"repro/internal/discovery"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// wireKademlia wires an overlay the way devp2p does: every node gets a
// random 256-bit identity, the discovery universe bootstraps and
// converges, and each node dials `degree` peers sampled from its
// routing table. Because identities carry no geographic structure,
// the resulting topology is location-independent — the property the
// paper's §III-B1 analysis rests on.
func wireKademlia(network *p2p.Network, rng *sim.RNG, degree int) error {
	if degree < 1 {
		return fmt.Errorf("core: degree %d < 1", degree)
	}
	universe, err := discovery.NewUniverse(discovery.DefaultBucketSize)
	if err != nil {
		return err
	}
	nodes := network.Nodes()
	byID := make(map[discovery.NodeID]*p2p.Node, len(nodes))
	for _, n := range nodes {
		id := discovery.IDFromLabel("overlay-node-" + strconv.Itoa(int(n.ID())))
		if err := universe.Join(id); err != nil {
			return err
		}
		byID[id] = n
	}
	if err := universe.Bootstrap(rng, 3, 2); err != nil {
		return err
	}
	// Dial in overlay insertion order: SamplePeers consumes RNG draws,
	// so iterating the byID map here would make the wiring depend on
	// map order — a nondeterminism the campaign contract forbids.
	for _, node := range nodes {
		id := discovery.IDFromLabel("overlay-node-" + strconv.Itoa(int(node.ID())))
		peers, err := universe.SamplePeers(rng, id, degree)
		if err != nil {
			return err
		}
		for _, pid := range peers {
			target, ok := byID[pid]
			if !ok {
				continue
			}
			// Peer-limit refusals are expected; discovery keeps
			// candidates available elsewhere.
			_ = network.Connect(node, target)
		}
	}
	return nil
}
