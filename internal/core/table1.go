package core

import (
	"fmt"
	"strings"
)

// Table I of the paper documents the measurement infrastructure. The
// original is physical-testbed configuration, reproduced here verbatim
// as data (it parameterizes nothing measurable in the simulation, but
// EXPERIMENTS.md reports it for completeness, alongside what the
// simulation substitutes for each machine).

// MachineSpec is one Table I row.
type MachineSpec struct {
	Location      string
	CPU           string
	RAMGB         int
	BandwidthGbps int
	// SimulatedBy notes the reproduction's substitute.
	SimulatedBy string
}

// InfrastructureSpecs returns the paper's Table I.
func InfrastructureSpecs() []MachineSpec {
	const sub = "measurement node (measure.Node) with NTP-skewed clock"
	return []MachineSpec{
		{Location: "NA", CPU: "4x Intel Xeon 2.3 GHz", RAMGB: 15, BandwidthGbps: 8, SimulatedBy: sub},
		{Location: "EA", CPU: "4x Intel Xeon 2.3 GHz", RAMGB: 15, BandwidthGbps: 8, SimulatedBy: sub},
		{Location: "CE", CPU: "4x Intel Xeon 2.4 GHz", RAMGB: 8, BandwidthGbps: 10, SimulatedBy: sub},
		{Location: "WE", CPU: "40x Intel Xeon 2.2 GHz", RAMGB: 128, BandwidthGbps: 10, SimulatedBy: sub},
	}
}

// RenderInfrastructure prints Table I in the paper's layout.
func RenderInfrastructure() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-24s %-8s %-16s\n", "Location", "CPU", "RAM(GB)", "Bandwidth(Gbps)")
	for _, m := range InfrastructureSpecs() {
		fmt.Fprintf(&b, "%-8s %-24s %-8d %-16d\n", m.Location, m.CPU, m.RAMGB, m.BandwidthGbps)
	}
	return b.String()
}
