package core

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/mining"
	"repro/internal/txgen"
)

// smallCampaign returns a fast configuration for tests.
func smallCampaign(seed uint64) CampaignConfig {
	cfg := DefaultCampaignConfig(seed)
	cfg.NetworkNodes = 150
	cfg.Degree = 6
	cfg.Measurement = PaperMeasurementSpecs(30)
	cfg.Blocks = 60
	return cfg
}

func TestNewCampaignValidation(t *testing.T) {
	bad := []func(*CampaignConfig){
		func(c *CampaignConfig) { c.NetworkNodes = 5 },
		func(c *CampaignConfig) { c.Degree = 0 },
		func(c *CampaignConfig) { c.Blocks = 0 },
		func(c *CampaignConfig) { c.Measurement = nil },
		func(c *CampaignConfig) { c.Mining.Pools = nil },
	}
	for i, mutate := range bad {
		cfg := smallCampaign(1)
		mutate(&cfg)
		if _, err := NewCampaign(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCampaignEndToEnd(t *testing.T) {
	res, err := RunCampaign(smallCampaign(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("nodes: %d", len(res.Nodes))
	}
	if len(res.Dataset.Records) == 0 {
		t.Fatal("no records")
	}
	if res.MessagesSent == 0 || res.BytesSent == 0 {
		t.Fatal("no transport activity")
	}
	// The log-reconstructed chain must agree with ground truth on the
	// main chain, modulo the unstable tip.
	truthMain := res.Tree.MainChain()
	viewMain := res.View.Main
	if len(viewMain) < len(truthMain)-3 {
		t.Fatalf("reconstructed chain too short: %d vs %d", len(viewMain), len(truthMain))
	}
	for i := 0; i < len(viewMain)-2 && i+1 < len(truthMain); i++ {
		if viewMain[i].Hash != truthMain[i+1].Hash() { // +1 skips genesis
			t.Fatalf("main chain mismatch at %d", i)
		}
	}
	// Every figure-1/2 analysis must run on the result.
	if _, err := analysis.PropagationDelays(res.Index); err != nil {
		t.Fatalf("fig1: %v", err)
	}
	first, err := analysis.FirstObservations(res.Index)
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	var total float64
	for _, share := range first.Share {
		total += share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("first-observation shares sum to %v", total)
	}
}

func TestCampaignWithWorkload(t *testing.T) {
	cfg := smallCampaign(3)
	cfg.CaptureTxLinks = true
	cfg.Blocks = 80
	wl := txgen.DefaultConfig()
	wl.Senders = 100
	wl.MeanInterArrival = 400 // ~2.5 tx/s
	if testing.Short() {
		// Transaction gossip dominates the cost; a thinner workload
		// over fewer blocks keeps the asserted properties (txs commit,
		// fig. 4/5 analyses run) while fitting the CI tier.
		cfg.Blocks = 40
		wl.Senders = 40
		wl.MeanInterArrival = 1600 // ~0.6 tx/s
	}
	cfg.Workload = &wl
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TxRecords) == 0 {
		t.Fatal("no workload records")
	}
	commits, err := analysis.CommitTimes(res.Index, res.View)
	if err != nil {
		t.Fatalf("fig4: %v", err)
	}
	if commits.Txs == 0 {
		t.Fatal("no committed txs resolved")
	}
	if _, err := analysis.Reordering(res.Index, res.View); err != nil {
		t.Fatalf("fig5: %v", err)
	}
}

func TestCampaignDeterministicReplay(t *testing.T) {
	r1, err := RunCampaign(smallCampaign(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCampaign(smallCampaign(7))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tree.Head().Hash() != r2.Tree.Head().Hash() {
		t.Fatal("chains diverged")
	}
	if len(r1.Dataset.Records) != len(r2.Dataset.Records) {
		t.Fatal("logs diverged")
	}
	if r1.MessagesSent != r2.MessagesSent {
		t.Fatal("transport diverged")
	}
}

func TestCampaignPerfectClocks(t *testing.T) {
	cfg := smallCampaign(4)
	cfg.PerfectClocks = true
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Dataset.Records {
		if r.LocalMillis != r.TrueMillis {
			t.Fatal("perfect clocks must not skew")
		}
	}
}

func TestRunChainOnly(t *testing.T) {
	res, err := RunChainOnly(5, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~6-7% of produced heights fork off-main, so expect ~1860+.
	if len(res.View.Main) < 1800 {
		t.Fatalf("main chain: %d", len(res.View.Main))
	}
	// Chain-level analyses must all run.
	if _, err := analysis.EmptyBlocks(res.View); err != nil {
		t.Fatalf("fig6: %v", err)
	}
	if _, err := analysis.Forks(res.View); err != nil {
		t.Fatalf("table3: %v", err)
	}
	if _, err := analysis.Sequences(res.View); err != nil {
		t.Fatalf("fig7: %v", err)
	}
	if _, err := analysis.OneMinerForks(res.View); err != nil {
		t.Fatalf("one-miner: %v", err)
	}
	if _, err := RunChainOnly(5, 0, nil); err == nil {
		t.Fatal("zero blocks must fail")
	}
	// Mutators apply.
	res2, err := RunChainOnly(5, 100, func(c *mining.Config) {
		c.Pools = []mining.PoolConfig{{
			Name: "Solo", HashrateShare: 1,
			GatewayRegions: []geo.Region{geo.NorthAmerica},
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, meta := range res2.View.Main {
		if meta.Miner != "Solo" {
			t.Fatal("mutator ignored")
		}
	}
}

func TestInfrastructureTable(t *testing.T) {
	specs := InfrastructureSpecs()
	if len(specs) != 4 {
		t.Fatalf("rows: %d", len(specs))
	}
	if specs[3].Location != "WE" || specs[3].RAMGB != 128 {
		t.Fatalf("WE row: %+v", specs[3])
	}
	out := RenderInfrastructure()
	for _, want := range []string{"NA", "EA", "CE", "WE", "Bandwidth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
