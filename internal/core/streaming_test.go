package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/txgen"
)

// TestStreamingMatchesRawLog runs the identical campaign once in
// raw-log mode and once streaming and asserts every analysis output
// derived from the index is byte-identical — the determinism contract
// that lets the experiment registry run streaming unconditionally.
func TestStreamingMatchesRawLog(t *testing.T) {
	run := func(streaming bool) *CampaignResult {
		t.Helper()
		cfg := DefaultCampaignConfig(7)
		cfg.NetworkNodes = 60
		cfg.Blocks = 40
		cfg.Degree = 5
		cfg.Measurement = PaperMeasurementSpecs(20)
		cfg.CaptureTxLinks = true
		cfg.Streaming = streaming
		wl := txgen.DefaultConfig()
		wl.Senders = 50
		wl.MeanInterArrival = 400 * sim.Millisecond
		cfg.Workload = &wl
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	raw := run(false)
	str := run(true)

	if len(raw.Dataset.Records) == 0 {
		t.Fatal("raw-log campaign kept no records")
	}
	if len(str.Dataset.Records) != 0 {
		t.Fatal("streaming campaign retained records")
	}
	if len(raw.Dataset.NodeNames) != len(str.Dataset.NodeNames) {
		t.Fatalf("node names differ: %v vs %v", raw.Dataset.NodeNames, str.Dataset.NodeNames)
	}
	// Both modes list nodes in attach order — the order must match
	// element for element, not just in length.
	for i := range raw.Dataset.NodeNames {
		if raw.Dataset.NodeNames[i] != str.Dataset.NodeNames[i] {
			t.Fatalf("node name order diverged: %v vs %v",
				raw.Dataset.NodeNames, str.Dataset.NodeNames)
		}
	}

	type render func(*CampaignResult) (string, error)
	renders := map[string]render{
		"propagation": func(r *CampaignResult) (string, error) {
			p, err := analysis.PropagationDelays(r.Index)
			if err != nil {
				return "", err
			}
			return analysis.RenderPropagation(p), nil
		},
		"first_observation": func(r *CampaignResult) (string, error) {
			f, err := analysis.FirstObservations(r.Index)
			if err != nil {
				return "", err
			}
			return analysis.RenderFirstObservations(f), nil
		},
		"redundancy": func(r *CampaignResult) (string, error) {
			red, err := analysis.Redundancy(r.Index, "WE")
			if err != nil {
				return "", err
			}
			return analysis.RenderRedundancy(red), nil
		},
		"commit_times": func(r *CampaignResult) (string, error) {
			c, err := analysis.CommitTimes(r.Index, r.View)
			if err != nil {
				return "", err
			}
			return analysis.RenderCommit(c), nil
		},
		"reordering": func(r *CampaignResult) (string, error) {
			re, err := analysis.Reordering(r.Index, r.View)
			if err != nil {
				return "", err
			}
			return analysis.RenderReordering(re), nil
		},
	}
	for name, f := range renders {
		a, err := f(raw)
		if err != nil {
			t.Fatalf("%s (raw): %v", name, err)
		}
		b, err := f(str)
		if err != nil {
			t.Fatalf("%s (streaming): %v", name, err)
		}
		if a != b {
			t.Errorf("%s diverged between raw-log and streaming modes:\nraw:\n%s\nstreaming:\n%s", name, a, b)
		}
	}
	if raw.MessagesSent != str.MessagesSent || raw.BytesSent != str.BytesSent {
		t.Errorf("transport totals diverged: %d/%d vs %d/%d",
			raw.MessagesSent, raw.BytesSent, str.MessagesSent, str.BytesSent)
	}
}
