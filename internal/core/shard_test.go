package core

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/txgen"
)

// The sharded-execution determinism contract at the campaign level:
// every artifact — measurement records, transport totals, fault books,
// virtual duration — is a pure function of the configuration, never of
// the shard (worker) count. Run with -race these tests also exercise
// the cross-lane merge, the phase-A/phase-B barrier, and the lane-
// local pools under real concurrency; `make test-shard` selects them.

// shardDigest is the cross-shard comparison surface: everything a
// campaign reports that could conceivably wobble under concurrency.
type shardDigest struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64
	Duration sim.Time
	Records  int
	Main     int
	TxCount  int
}

func digestOf(t *testing.T, cfg CampaignConfig) (shardDigest, *CampaignResult) {
	t.Helper()
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	return shardDigest{
		Messages: res.MessagesSent,
		Bytes:    res.BytesSent,
		Dropped:  res.MessagesDropped,
		Duration: res.Duration,
		Records:  len(res.Dataset.Records),
		Main:     len(res.View.Main),
		TxCount:  len(res.TxRecords),
	}, res
}

// shardCampaign is a small healthy campaign with a transaction
// workload, so the invariance check covers block relay, tx gossip and
// the pull paths together.
func shardCampaign(seed uint64) CampaignConfig {
	cfg := DefaultCampaignConfig(seed)
	cfg.NetworkNodes = 150
	cfg.Blocks = 30
	wl := txgen.DefaultConfig()
	wl.Senders = 40
	wl.MeanInterArrival = 1600 // ~0.6 tx/s: enough gossip to cross lanes
	cfg.Workload = &wl
	return cfg
}

// TestShardedCampaignInvariantAcrossShardCounts: identical artifacts
// at shards 1, 2 and 6 — the lane decomposition is fixed by the region
// enum, so the worker count must be invisible in every output,
// including the exact per-record reception times.
func TestShardedCampaignInvariantAcrossShardCounts(t *testing.T) {
	base := shardCampaign(23)
	base.Shards = 1
	ref, refRes := digestOf(t, base)
	if ref.Records == 0 || ref.Main < 10 || ref.TxCount == 0 {
		t.Fatalf("reference sharded campaign too small to be meaningful: %+v", ref)
	}
	for _, shards := range []int{2, 6} {
		cfg := shardCampaign(23)
		cfg.Shards = shards
		got, res := digestOf(t, cfg)
		if got != ref {
			t.Fatalf("shards=%d digest %+v, want %+v", shards, got, ref)
		}
		if !reflect.DeepEqual(res.Dataset.Records, refRes.Dataset.Records) {
			t.Fatalf("shards=%d: measurement records differ from shards=1", shards)
		}
	}
}

// TestShardedFaultedCampaignInvariance runs all four fault classes
// sharded and asserts shard-count invariance: partitions, loss draws,
// crash/churn timing and the catch-up fetch must all come out of
// region-keyed streams, never worker-keyed ones.
func TestShardedFaultedCampaignInvariance(t *testing.T) {
	horizon := 50 * 13300 * sim.Millisecond
	faulted := func(shards int) CampaignConfig {
		cfg := faultCampaign(31, &faults.Config{
			Crash: &faults.Crash{MeanBetween: horizon / 20, MeanDowntime: 30 * sim.Second},
			Partitions: []faults.Partition{{
				Start:    horizon / 4,
				Duration: horizon / 4,
				Regions:  []geo.Region{geo.EasternAsia, geo.Oceania},
			}},
			Loss:  &faults.Loss{DropProb: 0.01, ExtraDelayMean: 10 * sim.Millisecond},
			Churn: &faults.Churn{MeanBetween: horizon / 30},
		})
		cfg.Streaming = false
		cfg.Shards = shards
		return cfg
	}
	ref, refRes := digestOf(t, faulted(1))
	if ref.Dropped == 0 {
		t.Fatal("faulted reference dropped nothing; the test is vacuous")
	}
	refStats := *refRes.Faults
	for _, shards := range []int{2, 6} {
		got, res := digestOf(t, faulted(shards))
		if got != ref {
			t.Fatalf("shards=%d digest %+v, want %+v", shards, got, ref)
		}
		if *res.Faults != refStats {
			t.Fatalf("shards=%d fault stats %+v, want %+v", shards, *res.Faults, refStats)
		}
		if !reflect.DeepEqual(res.Dataset.Records, refRes.Dataset.Records) {
			t.Fatalf("shards=%d: measurement records differ from shards=1", shards)
		}
	}
}

// TestShardedEnvKnob pins the ETHREPRO_SHARDS fallback: an unset
// Shards field defers to the environment, an explicit field wins.
func TestShardedEnvKnob(t *testing.T) {
	t.Setenv("ETHREPRO_SHARDS", "6")
	if got := resolveShards(0); got != 6 {
		t.Fatalf("resolveShards(0) with env = %d, want 6", got)
	}
	if got := resolveShards(2); got != 2 {
		t.Fatalf("resolveShards(2) = %d, want 2 (explicit beats env)", got)
	}
	if got := resolveShards(100); got != geo.NumRegions {
		t.Fatalf("resolveShards(100) = %d, want clamp to %d", got, geo.NumRegions)
	}
	t.Setenv("ETHREPRO_SHARDS", "")
	if got := resolveShards(0); got != 0 {
		t.Fatalf("resolveShards(0) without env = %d, want 0", got)
	}
}
